"""Statistical leakage scoring over probe-latency distributions.

The paper's security argument — and CacheBar's evaluation methodology
(Zhou et al., CCS'16) — frames a cache side channel as a
*distinguishability game*: the attacker observes probe latencies and
must decide whether the victim's secret-dependent activity happened.  A
defense works exactly when the latency distribution the attacker sees
with an active victim is indistinguishable from the one it sees without.
This module scores that game from two latency samples:

* :func:`roc_auc` — the area under the ROC curve of the optimal
  single-threshold distinguisher, computed as the Mann-Whitney U
  statistic with average-rank tie handling.  0.5 means the two
  populations are statistically identical (the attacker can only
  guess); 1.0 (or 0.0 — direction is arbitrary) means perfectly
  separable;
* :func:`auc_separation` — the direction-folded AUC
  ``max(auc, 1 - auc)``, so "how distinguishable" reads on one scale
  from 0.5 (no leak) to 1.0 (full leak) regardless of which class has
  the lower latencies;
* :func:`mutual_information_bits` — the plug-in estimate of
  ``I(class; latency)`` in bits per probe, with the Miller-Madow bias
  correction.  For a balanced binary secret this is bounded by 1 bit:
  0 bits means the probe carries nothing, 1 bit means each probe
  reveals the victim's activity outright;
* :func:`bootstrap_auc` — a seeded percentile bootstrap confidence
  interval over the folded AUC, so a verdict ("leaks" / "does not
  leak") rests on an interval rather than a point estimate a single
  noisy seed could flip.

Latencies are simulated cycle counts — small exact integers — so the
mutual-information estimator treats each distinct value as one symbol
(no binning heuristics), and all scores are bit-reproducible given the
same samples and bootstrap seed.  Degenerate input (an empty class)
raises :class:`~repro.common.errors.LeakageStatsError` rather than
returning a number that looks meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import LeakageStatsError

#: folded-AUC separation at or above which a channel counts as leaking
LEAK_AUC_CUTOFF = 0.6


def _as_populations(
    negatives: Sequence[float], positives: Sequence[float], what: str
) -> Tuple[np.ndarray, np.ndarray]:
    neg = np.asarray(negatives, dtype=np.float64)
    pos = np.asarray(positives, dtype=np.float64)
    if neg.ndim != 1 or pos.ndim != 1:
        raise LeakageStatsError(f"{what}: samples must be one-dimensional")
    if neg.size == 0 or pos.size == 0:
        raise LeakageStatsError(
            f"{what}: needs samples from both classes "
            f"(got {neg.size} negative, {pos.size} positive)"
        )
    return neg, pos


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their group's average rank."""
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    # Tie groups: a new group starts wherever the sorted value changes.
    new_group = np.empty(values.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=new_group[1:])
    group = np.cumsum(new_group) - 1
    counts = np.bincount(group)
    ends = np.cumsum(counts)
    average = ends - (counts - 1) / 2.0  # mean of each group's rank span
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = average[group]
    return ranks


def roc_auc(negatives: Sequence[float], positives: Sequence[float]) -> float:
    """P(positive sample > negative sample), ties counting one half.

    The Mann-Whitney estimator of the ROC area: rank the pooled sample
    (average ranks on ties), sum the positive ranks, subtract the
    minimum possible rank sum.  Identical distributions score 0.5;
    fully separated ones score 1.0 (positives higher) or 0.0 (lower).
    """
    neg, pos = _as_populations(negatives, positives, "roc_auc")
    ranks = _average_ranks(np.concatenate([neg, pos]))
    pos_rank_sum = float(ranks[neg.size:].sum())
    u = pos_rank_sum - pos.size * (pos.size + 1) / 2.0
    return u / (neg.size * pos.size)


def auc_separation(
    negatives: Sequence[float], positives: Sequence[float]
) -> float:
    """Direction-folded AUC: ``max(auc, 1 - auc)`` in [0.5, 1.0].

    An attacker is free to invert its decision rule, so a channel where
    victim activity *lowers* probe latency (flush+reload) and one where
    it *raises* it (flush+flush) are equally distinguishable.
    """
    auc = roc_auc(negatives, positives)
    return max(auc, 1.0 - auc)


def roc_curve(
    negatives: Sequence[float], positives: Sequence[float]
) -> List[Tuple[float, float]]:
    """The ROC polyline as (false-positive, true-positive) rate pairs.

    Points for every distinct decision threshold over the pooled sample,
    with the positive decision being ``value >= threshold``; endpoints
    (0, 0) and (1, 1) are always included.  Mostly a diagnostic — the
    scorecard records the scalar AUC — but tests use it to confirm the
    AUC matches the trapezoid area under this curve.
    """
    neg, pos = _as_populations(negatives, positives, "roc_curve")
    thresholds = np.unique(np.concatenate([neg, pos]))[::-1]
    points = [(0.0, 0.0)]
    for threshold in thresholds:
        fpr = float(np.count_nonzero(neg >= threshold)) / neg.size
        tpr = float(np.count_nonzero(pos >= threshold)) / pos.size
        points.append((fpr, tpr))
    if points[-1] != (1.0, 1.0):
        points.append((1.0, 1.0))
    return points


def _entropy_bits(counts: np.ndarray, total: int) -> float:
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def mutual_information_bits(
    negatives: Sequence[float],
    positives: Sequence[float],
    *,
    miller_madow: bool = True,
) -> float:
    """Plug-in estimate of ``I(class; latency)`` in bits per probe.

    Latency values are discrete symbols (simulated cycles), so the joint
    distribution is a 2 x K contingency table of exact counts and the
    plug-in estimate is ``H(class) + H(latency) - H(class, latency)``.

    The plug-in estimator is biased upward on finite samples (spurious
    structure in sparse cells reads as information); ``miller_madow``
    applies the standard first-order correction — each entropy term gets
    ``(K_nonzero - 1) / (2N)`` nats added — which for the MI combination
    subtracts ``(K_joint - K_class - K_latency + 1) / (2N ln 2)`` bits.
    The result is clamped to ``[0, H(class)]``: the correction may
    otherwise push a near-zero MI slightly negative, and no binary
    observation can carry more than the class entropy.
    """
    neg, pos = _as_populations(negatives, positives, "mutual_information")
    total = neg.size + pos.size
    symbols, inverse = np.unique(
        np.concatenate([neg, pos]), return_inverse=True
    )
    joint = np.zeros((2, symbols.size), dtype=np.int64)
    np.add.at(joint[0], inverse[: neg.size], 1)
    np.add.at(joint[1], inverse[neg.size:], 1)
    class_counts = joint.sum(axis=1)
    symbol_counts = joint.sum(axis=0)
    h_class = _entropy_bits(class_counts, total)
    h_symbol = _entropy_bits(symbol_counts, total)
    h_joint = _entropy_bits(joint.ravel(), total)
    info = h_class + h_symbol - h_joint
    if miller_madow:
        k_joint = int(np.count_nonzero(joint))
        k_class = int(np.count_nonzero(class_counts))
        k_symbol = int(np.count_nonzero(symbol_counts))
        info += (k_joint - k_class - k_symbol + 1) / (
            2.0 * total * math.log(2.0)
        )
    return max(0.0, min(info, h_class))


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap interval over the folded AUC."""

    point: float
    low: float
    high: float
    n_boot: int
    seed: int
    alpha: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "point": self.point,
            "low": self.low,
            "high": self.high,
            "n_boot": float(self.n_boot),
            "seed": float(self.seed),
            "alpha": self.alpha,
        }


def bootstrap_auc(
    negatives: Sequence[float],
    positives: Sequence[float],
    *,
    n_boot: int = 500,
    seed: int = 0,
    alpha: float = 0.05,
) -> BootstrapCI:
    """Seeded percentile bootstrap CI for :func:`auc_separation`.

    Each replicate resamples both classes independently with
    replacement and re-scores the folded AUC; the interval is the
    ``[alpha/2, 1 - alpha/2]`` percentile span.  The generator is a
    ``PCG64`` seeded explicitly, so the interval is a pure function of
    ``(samples, n_boot, seed, alpha)`` — the tournament's verdicts
    cannot drift between a local run and CI.
    """
    neg, pos = _as_populations(negatives, positives, "bootstrap_auc")
    if n_boot < 1:
        raise LeakageStatsError(f"n_boot must be >= 1, got {n_boot}")
    if not 0.0 < alpha < 1.0:
        raise LeakageStatsError(f"alpha must be in (0, 1), got {alpha}")
    rng = np.random.Generator(np.random.PCG64(seed))
    replicates = np.empty(n_boot, dtype=np.float64)
    for i in range(n_boot):
        neg_resample = neg[rng.integers(0, neg.size, size=neg.size)]
        pos_resample = pos[rng.integers(0, pos.size, size=pos.size)]
        replicates[i] = auc_separation(neg_resample, pos_resample)
    low, high = np.percentile(
        replicates, [100.0 * alpha / 2.0, 100.0 * (1.0 - alpha / 2.0)]
    )
    return BootstrapCI(
        point=auc_separation(neg, pos),
        low=float(low),
        high=float(high),
        n_boot=n_boot,
        seed=seed,
        alpha=alpha,
    )


def score_populations(
    negatives: Sequence[float],
    positives: Sequence[float],
    *,
    n_boot: int = 500,
    seed: int = 0,
    alpha: float = 0.05,
    leak_cutoff: float = LEAK_AUC_CUTOFF,
) -> Dict[str, object]:
    """The full per-cell score the tournament records.

    One call, one JSON-ready dict: directional AUC, folded separation,
    its bootstrap interval, mutual information, sample sizes, and the
    leak verdict.  The verdict is interval-based — ``leak`` is True only
    when the *lower* confidence bound clears ``leak_cutoff``, so a
    single lucky resample cannot promote noise into a leak (nor, on the
    gate's sanity direction, demote a real leak — that check uses the
    upper bound).
    """
    ci = bootstrap_auc(
        negatives, positives, n_boot=n_boot, seed=seed, alpha=alpha
    )
    return {
        "auc": roc_auc(negatives, positives),
        "separation": ci.point,
        "ci_low": ci.low,
        "ci_high": ci.high,
        "mi_bits": mutual_information_bits(negatives, positives),
        "n_neg": len(negatives),
        "n_pos": len(positives),
        "n_boot": n_boot,
        "alpha": alpha,
        "leak": bool(ci.low >= leak_cutoff),
        "leak_cutoff": leak_cutoff,
    }
