"""DRAM backend model.

A fixed-latency main memory with an optional open-row model: consecutive
accesses to the same DRAM row are slightly faster.  The row model is off
by default — the attacks and the TimeCache overhead shapes depend only on
the DRAM latency being far above any cache-hit latency — but it is useful
for making attacker latency histograms look realistic.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import StatGroup


class Dram:
    """Main memory: every access succeeds, at ``latency`` cycles."""

    def __init__(
        self,
        latency: int,
        row_bytes: int = 4096,
        row_hit_discount: int = 0,
        line_bytes: int = 64,
    ) -> None:
        if latency <= 0:
            raise ValueError(f"DRAM latency must be positive, got {latency}")
        if row_hit_discount < 0 or row_hit_discount >= latency:
            raise ValueError(
                "row_hit_discount must be in [0, latency), got "
                f"{row_hit_discount}"
            )
        self.latency = latency
        self.row_lines = max(1, row_bytes // line_bytes)
        self.row_hit_discount = row_hit_discount
        self._open_row: Optional[int] = None
        self.stats = StatGroup("DRAM")
        self.c_accesses = self.stats.bound_counter("accesses")
        self.c_writebacks = self.stats.bound_counter("writebacks")
        #: with no discount the open-row state is unobservable, so the
        #: access path can skip the row arithmetic entirely
        self._fixed_latency = row_hit_discount == 0

    def access(self, line_addr: int) -> int:
        """Service a line fetch or writeback; returns the latency."""
        self.c_accesses.add()
        if self._fixed_latency:
            return self.latency
        row = line_addr // self.row_lines
        if row == self._open_row:
            self.stats.counter("row_hits").add()
            return self.latency - self.row_hit_discount
        self._open_row = row
        return self.latency

    def writeback(self, line_addr: int) -> int:
        """Accept a dirty line; modeled like an access for latency."""
        self.c_writebacks.add()
        return self.access(line_addr)
