"""One set of a set-associative cache."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.memsys.line import CacheLine, LineState
from repro.memsys.replacement import ReplacementPolicy


class CacheSet:
    """Ways plus a tag index and the set's replacement policy state.

    The set stores only architectural line state; TimeCache metadata is
    held in the enclosing cache's flat arrays, indexed by (set, way).
    """

    __slots__ = ("index", "lines", "policy", "_tag_to_way")

    def __init__(self, index: int, ways: int, policy: ReplacementPolicy) -> None:
        self.index = index
        self.lines: List[Optional[CacheLine]] = [None] * ways
        self.policy = policy
        self._tag_to_way: Dict[int, int] = {}

    def lookup(self, tag: int) -> Optional[int]:
        """Way holding ``tag``, or ``None`` on a set miss."""
        return self._tag_to_way.get(tag)

    def touch(self, way: int, now: int) -> None:
        line = self.lines[way]
        if line is None:
            raise SimulationError(f"touch on empty way {way}")
        line.touch(now)
        self.policy.on_access(way, now)

    def free_way(self) -> Optional[int]:
        for way, line in enumerate(self.lines):
            if line is None:
                return way
        return None

    def choose_victim(self, now: int) -> int:
        """Way to fill: a free way if any, else the policy's victim."""
        free = self.free_way()
        if free is not None:
            return free
        return self.policy.victim(self.lines, now)

    def choose_victim_in(self, allowed_ways: range, now: int) -> int:
        """Way to fill within ``allowed_ways`` (CAT-style way masking).

        A free allowed way wins; otherwise the least-recently-used line
        *within the allowed ways* is evicted, regardless of the set's
        global policy — which is how way masking constrains hardware
        replacement."""
        for way in allowed_ways:
            if self.lines[way] is None:
                return way
        best_way = -1
        best_time = None
        for way in allowed_ways:
            line = self.lines[way]
            assert line is not None
            if best_time is None or line.last_used < best_time:
                best_time = line.last_used
                best_way = way
        if best_way < 0:
            raise SimulationError("empty allowed-way mask")
        return best_way

    def install(self, way: int, tag: int, now: int, state: LineState) -> CacheLine:
        """Place a new line in ``way``; the way must already be empty."""
        if self.lines[way] is not None:
            raise SimulationError(
                f"install into occupied way {way} (evict first)"
            )
        if tag in self._tag_to_way:
            raise SimulationError(f"duplicate tag {tag:#x} in set {self.index}")
        line = CacheLine(tag, now, state)
        self.lines[way] = line
        self._tag_to_way[tag] = way
        self.policy.on_fill(way, now)
        return line

    def remove(self, way: int) -> CacheLine:
        """Remove and return the line in ``way`` (eviction/invalidation)."""
        line = self.lines[way]
        if line is None:
            raise SimulationError(f"remove from empty way {way}")
        self.lines[way] = None
        del self._tag_to_way[line.tag]
        self.policy.on_invalidate(way)
        return line

    @property
    def occupancy(self) -> int:
        return len(self._tag_to_way)

    def resident_tags(self) -> List[int]:
        return list(self._tag_to_way)
