"""A single cache level with TimeCache metadata arrays.

The cache owns, per (set, way) slot:

* the architectural line (:class:`~repro.memsys.line.CacheLine`), and
* two flat numpy arrays mirroring the paper's *separate transposed SRAM
  array* (Figure 3): ``tc`` — the truncated fill timestamp of the slot —
  and ``sbits`` — a bitmask with one security bit per hardware context
  sharing this cache.

Keeping Tc/s-bits in flat arrays matches the hardware design (a distinct
8-T SRAM structure scanned in parallel at context switches) and lets the
context-switch operations (save, restore, compare-and-reset) run as
whole-array operations, exactly like the bit-serial timestamp-parallel
comparator does in hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.memsys.cacheset import CacheSet
from repro.memsys.line import CacheLine, LineState
from repro.memsys.replacement import make_replacement_policy


class Cache:
    """One level of the hierarchy (L1I, L1D, or LLC).

    ``hw_contexts`` lists the global hardware-context ids that share this
    cache; each gets one s-bit column.  A private L1 of a non-SMT core has
    exactly one context; the shared LLC has one per core thread.
    """

    def __init__(
        self,
        config: CacheConfig,
        hw_contexts: Sequence[int],
        hit_latency: int,
        rng: Optional[DeterministicRng] = None,
        max_sharers: int = 0,
    ) -> None:
        config.validate()
        if not hw_contexts:
            raise SimulationError(f"{config.name}: needs >= 1 hardware context")
        if max_sharers < 0:
            raise SimulationError(f"{config.name}: max_sharers cannot be negative")
        self.config = config
        self.name = config.name
        self.hit_latency = hit_latency
        self.line_bytes = config.line_bytes
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self._ctx_to_col: Dict[int, int] = {
            ctx: i for i, ctx in enumerate(hw_contexts)
        }
        if len(self._ctx_to_col) != len(hw_contexts):
            raise SimulationError(f"{config.name}: duplicate hardware contexts")
        self.sets: List[CacheSet] = [
            CacheSet(
                i,
                config.ways,
                make_replacement_policy(config.replacement, config.ways, rng),
            )
            for i in range(self.num_sets)
        ]
        #: truncated fill timestamp per slot (TimeCache's Tc array)
        self.tc = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        #: per-slot s-bit bitmask, one bit per context column
        self.sbits = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        #: per-slot valid bit, mirroring the tag array's occupancy; gates
        #: s-bit restores so invalid slots never carry visibility bits
        #: (the structural invariant the robustness checker enforces)
        self.valid = np.zeros((self.num_sets, self.ways), dtype=bool)
        #: Section VI-C scaling option: cap the number of contexts whose
        #: s-bit may be simultaneously set per line (a limited-pointer
        #: directory holds ~max_sharers pointers of log2(n) bits instead
        #: of n presence bits).  0 = full bit-vector (the paper default).
        #: Overflow evicts another sharer's visibility — always safe:
        #: the evicted sharer re-pays a first access, never gains a hit.
        self.max_sharers = max_sharers
        self.stats = StatGroup(config.name)
        # Hot counters, bound once so the access path never pays a
        # per-record dict lookup (see StatGroup.bound_counter).
        self.c_accesses = self.stats.bound_counter("accesses")
        self.c_hits = self.stats.bound_counter("hits")
        self.c_misses = self.stats.bound_counter("misses")
        self.c_first_access_misses = self.stats.bound_counter(
            "first_access_misses"
        )
        self.c_fills = self.stats.bound_counter("fills")
        self.c_evictions = self.stats.bound_counter("evictions")
        self.c_dirty_evictions = self.stats.bound_counter("dirty_evictions")
        self.c_cold_misses = self.stats.bound_counter("cold_misses")
        self.c_invalidations = self.stats.bound_counter("invalidations")
        self.c_writebacks = self.stats.bound_counter("writebacks")
        self.c_back_invalidations = self.stats.bound_counter(
            "back_invalidations"
        )
        #: line addresses ever filled, to classify cold (compulsory)
        #: misses — reported separately so scaled (short) runs can report
        #: demand MPKI comparably to the paper's 1e9-instruction runs
        self._ever_filled: set = set()
        #: observation hook (repro.robustness, repro.obs): called after
        #: each metadata transition as ``(event, set_idx, way, ctx)`` where
        #: event is one of "fill", "evict", "invalidate", "sbit_set"; ctx
        #: is the global hardware context for fill/sbit_set and -1
        #: otherwise.  The invariant checker mirrors s-bit entitlement
        #: from these events; the obs tracer turns them into its event
        #: stream.  Direct assignment (single observer) still works;
        #: ``add_event_listener`` composes several without clobbering.
        self.event_listener: Optional[Callable[[str, int, int, int], None]] = None
        self._event_listeners: List[Callable[[str, int, int, int], None]] = []

    def _notify(self, event: str, set_idx: int, way: int, ctx: int = -1) -> None:
        if self.event_listener is not None:
            self.event_listener(event, set_idx, way, ctx)

    def add_event_listener(
        self, listener: Callable[[str, int, int, int], None]
    ) -> None:
        """Register a listener without displacing existing observers.

        A single listener is installed directly (the hot paths keep their
        one-slot ``is None`` check); several are fanned out through one
        dispatcher.  A listener installed by direct ``event_listener``
        assignment before the first ``add_event_listener`` call is
        adopted into the chain.
        """
        if self.event_listener is not None and not self._event_listeners:
            self._event_listeners.append(self.event_listener)
        self._event_listeners.append(listener)
        self._rebind_listeners()

    def remove_event_listener(
        self, listener: Callable[[str, int, int, int], None]
    ) -> None:
        self._event_listeners.remove(listener)
        self._rebind_listeners()

    def _rebind_listeners(self) -> None:
        listeners = self._event_listeners
        if not listeners:
            self.event_listener = None
        elif len(listeners) == 1:
            self.event_listener = listeners[0]
        else:
            chain = tuple(listeners)

            def fanout(
                event: str, set_idx: int, way: int, ctx: int, _chain=chain
            ) -> None:
                for fn in _chain:
                    fn(event, set_idx, way, ctx)

            self.event_listener = fanout

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def tag(self, line_addr: int) -> int:
        return line_addr >> 0  # full line address as tag (simple, unambiguous)

    def ctx_column(self, ctx: int) -> int:
        try:
            return self._ctx_to_col[ctx]
        except KeyError:
            raise SimulationError(
                f"{self.name}: hardware context {ctx} does not share this cache"
            ) from None

    def ctx_bit(self, ctx: int) -> int:
        return 1 << self.ctx_column(ctx)

    @property
    def contexts(self) -> List[int]:
        return list(self._ctx_to_col)

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[Tuple[int, int]]:
        """(set, way) of a resident line, or ``None`` on a miss."""
        set_idx = self.set_index(line_addr)
        way = self.sets[set_idx].lookup(self.tag(line_addr))
        if way is None:
            return None
        return set_idx, way

    def line_at(self, set_idx: int, way: int) -> Optional[CacheLine]:
        return self.sets[set_idx].lines[way]

    def touch(self, set_idx: int, way: int, now: int) -> None:
        self.sets[set_idx].touch(way, now)

    def sbit_is_set(self, set_idx: int, way: int, ctx: int) -> bool:
        return bool(self.sbits[set_idx, way] & self.ctx_bit(ctx))

    def set_sbit(self, set_idx: int, way: int, ctx: int) -> None:
        bit = self.ctx_bit(ctx)
        current = int(self.sbits[set_idx, way])
        if (
            self.max_sharers
            and not current & bit
            and bin(current).count("1") >= self.max_sharers
        ):
            # Limited-pointer overflow: evict the lowest-index sharer's
            # visibility to make room (it will re-pay a first access).
            lowest = current & -current
            current &= ~lowest
            self.stats.counter("sharer_evictions").add()
        self.sbits[set_idx, way] = current | bit
        self._notify("sbit_set", set_idx, way, ctx)

    def fill(
        self,
        line_addr: int,
        ctx: int,
        tc_now: int,
        state: LineState,
        dirty: bool = False,
        allowed_ways: Optional[range] = None,
    ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Install ``line_addr``, evicting a victim if the set is full.

        On the fill, the slot's Tc is set to the (already truncated)
        ``tc_now`` and the s-bit of the filling context is set while all
        other contexts' s-bits are cleared — the paper's fill rule.

        ``allowed_ways`` restricts both free-way selection and victim
        choice (CAT-style way masking for the partitioning baseline).

        Returns ``(new_line, evicted_line_or_None)``; the caller (the
        hierarchy) is responsible for writeback and back-invalidation of
        the evicted line.
        """
        set_idx = self.set_index(line_addr)
        cset = self.sets[set_idx]
        victim: Optional[CacheLine] = None
        if allowed_ways is None:
            way = cset.free_way()
            if way is None:
                way = cset.choose_victim(tc_now)
                victim = self._evict(set_idx, way)
        else:
            way = cset.choose_victim_in(allowed_ways, tc_now)
            if cset.lines[way] is not None:
                victim = self._evict(set_idx, way)
        line = cset.install(way, self.tag(line_addr), tc_now, state)
        line.dirty = dirty
        self.tc[set_idx, way] = tc_now
        self.sbits[set_idx, way] = self.ctx_bit(ctx)
        self.valid[set_idx, way] = True
        self._notify("fill", set_idx, way, ctx)
        self.c_fills.add()
        if line_addr not in self._ever_filled:
            self._ever_filled.add(line_addr)
            self.c_cold_misses.add()
        return line, victim

    def _evict(self, set_idx: int, way: int) -> CacheLine:
        line = self.sets[set_idx].remove(way)
        # Eviction resets all s-bits for the slot (paper Section V-A).
        self.sbits[set_idx, way] = 0
        self.valid[set_idx, way] = False
        self._notify("evict", set_idx, way)
        self.c_evictions.add()
        if line.dirty:
            self.c_dirty_evictions.add()
        return line

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Invalidate ``line_addr`` if resident; s-bits are cleared too."""
        pos = self.lookup(line_addr)
        if pos is None:
            return None
        set_idx, way = pos
        line = self.sets[set_idx].remove(way)
        self.sbits[set_idx, way] = 0
        self.valid[set_idx, way] = False
        self._notify("invalidate", set_idx, way)
        self.c_invalidations.add()
        return line

    def resident(self, line_addr: int) -> bool:
        return self.lookup(line_addr) is not None

    def resident_line_addrs(self) -> List[int]:
        """All resident line addresses (tags double as line addresses)."""
        addrs: List[int] = []
        for cset in self.sets:
            addrs.extend(cset.resident_tags())
        return addrs

    @property
    def occupancy(self) -> int:
        return sum(cset.occupancy for cset in self.sets)

    # ------------------------------------------------------------------
    # Engine-generic slot accessors (the hierarchy's coherence and flush
    # paths use only these, so they run unchanged on the fast engine,
    # which has no CacheLine objects to hand out)
    # ------------------------------------------------------------------
    def mark_dirty(self, set_idx: int, way: int) -> None:
        """Dirty the resident line (store upgrade / private writeback)."""
        line = self.sets[set_idx].lines[way]
        if line is None:
            raise SimulationError(f"{self.name}: mark_dirty on empty slot")
        line.dirty = True
        line.state = LineState.MODIFIED

    def is_dirty(self, set_idx: int, way: int) -> bool:
        line = self.sets[set_idx].lines[way]
        return line is not None and line.dirty

    def downgrade(self, set_idx: int, way: int) -> None:
        """MODIFIED -> SHARED after a cache-to-cache transfer."""
        line = self.sets[set_idx].lines[way]
        if line is None:
            raise SimulationError(f"{self.name}: downgrade on empty slot")
        line.dirty = False
        line.state = LineState.SHARED

    def resident_tags_in_ways(self, ways: Sequence[int]) -> List[int]:
        """Resident tags restricted to ``ways``, set-major then way order
        (the iteration the partitioning domain flush performs)."""
        tags: List[int] = []
        for cset in self.sets:
            for way in ways:
                line = cset.lines[way]
                if line is not None:
                    tags.append(line.tag)
        return tags

    # ------------------------------------------------------------------
    # Context-switch support (used by repro.core.context)
    # ------------------------------------------------------------------
    def save_sbits(self, ctx: int) -> np.ndarray:
        """Snapshot the s-bit column of ``ctx`` as a (sets, ways) bool array.

        This is the software "save" half of the paper's context-switch
        protocol; it is *positional* (per slot, not per tag), exactly like
        the hardware array it models.
        """
        col = self.ctx_column(ctx)
        return ((self.sbits >> col) & 1).astype(bool)

    def restore_sbits(self, ctx: int, saved: Optional[np.ndarray]) -> None:
        """Load a saved s-bit column for ``ctx`` (or all-zero for ``None``).

        The restored bits are *stale*; the caller must follow up with the
        timestamp comparator to clear bits whose slot was refilled since
        the save (Tc > Ts).
        """
        col = self.ctx_column(ctx)
        bit = np.int64(1) << col
        self.sbits &= ~bit
        if saved is not None:
            if saved.shape != (self.num_sets, self.ways):
                raise SimulationError(
                    f"{self.name}: saved s-bit shape {saved.shape} != "
                    f"{(self.num_sets, self.ways)}"
                )
            # Valid bits gate the restore: a slot whose line was evicted
            # while the task was away gets no s-bit back (it could never
            # grant a hit anyway — the tag is gone — but keeping it out
            # of the array preserves "s-bit set => line valid").
            self.sbits |= (saved & self.valid).astype(np.int64) << col
        self.stats.counter("sbit_restores").add()

    def clear_sbits_where(self, ctx: int, mask: np.ndarray) -> int:
        """Clear ctx's s-bits wherever ``mask`` is True; returns #cleared."""
        col = self.ctx_column(ctx)
        bit = np.int64(1) << col
        before = int(np.count_nonzero(self.sbits & bit))
        self.sbits[mask] &= ~bit
        after = int(np.count_nonzero(self.sbits & bit))
        return before - after

    def clear_all_sbits(self, ctx: int) -> None:
        """Clear every s-bit of ``ctx`` (rollover fallback, new process)."""
        bit = np.int64(1) << self.ctx_column(ctx)
        self.sbits &= ~bit

    def sbit_save_bytes(self) -> int:
        """Bytes needed to save one context's s-bit column (Section VI-D)."""
        return (self.config.num_lines + 7) // 8

    def sbit_save_transfers(self, transfer_bytes: int = 64) -> int:
        """Cache-line-sized transfers for one save or restore."""
        bytes_needed = self.sbit_save_bytes()
        return (bytes_needed + transfer_bytes - 1) // transfer_bytes

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------
    def counters_into(self, registry, prefix=None, set_groups: int = 4) -> None:
        """Fold this cache's counter tree into a ``CounterRegistry``.

        Stat counters land as ``<prefix>.<counter>`` and a per-set-group
        s-bit/occupancy census as ``<prefix>.set_group.<g>.*`` — the
        dotted tree ``repro obs`` renders and merges.  ``FastCache``
        implements the same method over the same arrays, so the tree is
        engine-equivalent.
        """
        from repro.obs.counters import cache_sbit_census

        name = prefix if prefix is not None else self.name
        for key, value in self.stats.snapshot().items():
            leaf = key.split(".", 1)[1] if "." in key else key
            registry.slot(f"{name}.{leaf}").value += int(value)
        cache_sbit_census(self, registry, f"{name}.", set_groups)
