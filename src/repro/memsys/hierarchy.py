"""The multi-level memory hierarchy with the TimeCache access protocol.

This module implements the blocking access path of a TimingSimpleCPU-style
system — private L1I/L1D per core, a shared inclusive LLC, DRAM — plus the
three TimeCache behaviors the paper adds to a conventional cache:

1. An access is a hit only if the tag matches **and** the accessing
   hardware context's s-bit is set.
2. On a tag hit with a clear s-bit (a *first access*), the request is
   still sent down the hierarchy; the response data is discarded but its
   latency is observed, and the probe stops at the first lower level whose
   s-bit for the context is set (or at DRAM).
3. Fills set the requester's s-bit and clear everyone else's; evictions
   and invalidations clear all s-bits of the slot.

With ``TimeCacheConfig.enabled == False`` the very same code paths model
the unmodified baseline cache, which is what every experiment compares
against.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, replace
from time import perf_counter_ns
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.clock import GlobalClock
from repro.common.config import HierarchyConfig, TimeCacheConfig
from repro.common.errors import SimulationError, SimulationTimeout
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.memsys.cache import Cache
from repro.memsys.coherence import Directory
from repro.memsys.dram import Dram
from repro.memsys.line import CacheLine, LineState


class AccessKind(enum.Enum):
    """The three access types the CPU issues."""

    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access.

    ``level`` names where the request was ultimately serviced ("L1", "LLC",
    "DRAM", "remote"); ``first_access`` is True when TimeCache delayed a
    tag hit because the context's s-bit was clear at the outermost level
    that held the line.
    """

    latency: int
    level: str
    first_access: bool


class BatchResult(NamedTuple):
    """Outcome of one :meth:`MemoryHierarchy.access_batch` call.

    ``results`` holds one :class:`AccessResult` per access, in issue
    order; ``now`` is the cycle cursor after the last access — the value
    a caller passes as ``now`` to the next batch to continue the same
    stream (in ``nows`` mode it is simply the last issue time).
    """

    results: List[AccessResult]
    now: int


#: what callers may pass as the ``kinds`` argument of ``access_batch``
KindsArg = Union[AccessKind, Sequence[AccessKind]]


def _kind_sequence(kinds: KindsArg, n: int) -> List[AccessKind]:
    """Normalize the ``kinds`` argument to one AccessKind per address."""
    if isinstance(kinds, AccessKind):
        return [kinds] * n
    seq = list(kinds)
    if len(seq) != n:
        raise SimulationError(
            f"kinds has {len(seq)} entries for {n} addresses"
        )
    return seq


class MemoryHierarchy:
    """Private L1s per core + shared inclusive LLC + DRAM + directory."""

    def __init__(
        self,
        config: HierarchyConfig,
        timecache: Optional[TimeCacheConfig] = None,
        clock: Optional[GlobalClock] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.tc_config = timecache if timecache is not None else TimeCacheConfig()
        self.tc_config.validate()
        self.clock = clock if clock is not None else GlobalClock()
        #: wall-clock (``time.monotonic``) deadline armed by the kernel
        #: watchdog: batched access runs check it cooperatively between
        #: windows and raise :class:`SimulationTimeout`, so one huge
        #: ``AccessRun`` cannot overshoot the budget by a whole batch
        self.batch_deadline: Optional[float] = None
        self.line_shift = config.line_bytes.bit_length() - 1
        self._tc_mask = (1 << self.tc_config.timestamp_bits) - 1
        lat = config.latency
        self.latency = lat
        rng = rng if rng is not None else DeterministicRng()

        threads = config.threads_per_core
        all_ctxs = list(range(config.num_cores * threads))
        self.l1i: List[Cache] = []
        self.l1d: List[Cache] = []
        for core in range(config.num_cores):
            ctxs = all_ctxs[core * threads : (core + 1) * threads]
            self.l1i.append(
                self._make_cache(
                    replace(config.l1i, name=f"L1I{core}"),
                    ctxs,
                    lat.l1_hit,
                    rng.fork(f"l1i{core}"),
                    max_sharers=self.tc_config.max_sharers,
                )
            )
            self.l1d.append(
                self._make_cache(
                    replace(config.l1d, name=f"L1D{core}"),
                    ctxs,
                    lat.l1_hit,
                    rng.fork(f"l1d{core}"),
                    max_sharers=self.tc_config.max_sharers,
                )
            )
        self.llc = self._make_cache(
            config.llc,
            all_ctxs,
            lat.l2_hit,
            rng.fork("llc"),
            max_sharers=self.tc_config.max_sharers,
        )
        self.dram = Dram(lat.dram, line_bytes=config.line_bytes)
        self.directory = Directory()
        self.stats = StatGroup("hierarchy")
        self.c_accesses = self.stats.bound_counter("accesses")
        self._private_name_map: Dict[str, Cache] = {
            cache.name: cache for cache in self.private_caches()
        }
        #: CAT-style partitioning state: security domain per hw context
        #: (programmed by the OS at context switches) and the LLC way
        #: range per domain.  Empty/None when partitioning is off.
        self._domain_of_ctx: Dict[int, int] = {}
        self._partition_domains = 0
        #: observation hooks (repro.robustness).  Pre-listeners run before
        #: an access mutates any state, post-listeners after it completes;
        #: both receive the *line* address.  Empty lists cost nothing on
        #: the hot path.
        self.pre_access_listeners: List[
            Callable[[int, int, AccessKind, int], None]
        ] = []
        self.post_access_listeners: List[
            Callable[[int, int, AccessKind, int, AccessResult], None]
        ] = []
        #: optional :class:`repro.obs.spans.PhaseAccumulator` recording
        #: where batched-access *wall-clock* goes.  ``None`` keeps every
        #: batch path on its pre-existing ``is None`` branch; an
        #: installed :class:`~repro.obs.spans.ObsSession` points this at
        #: its accumulator when the owning system is constructed.
        self.kernel_profiler = None

    def _make_cache(
        self,
        config,
        hw_contexts,
        hit_latency: int,
        rng: DeterministicRng,
        max_sharers: int = 0,
    ) -> Cache:
        """Cache factory; the fast engine overrides this single seam to
        substitute its struct-of-arrays implementation while reusing the
        topology/rng-fork wiring above (fork names are part of the
        deterministic contract between the engines)."""
        return Cache(
            config, hw_contexts, hit_latency, rng, max_sharers=max_sharers
        )

    # ------------------------------------------------------------------
    # CAT-style way partitioning (the comparison baseline)
    # ------------------------------------------------------------------
    def enable_partitioning(self, domains: int) -> None:
        """Split the LLC ways into ``domains`` equal fill regions."""
        if domains < 1 or domains > self.llc.ways:
            raise SimulationError(
                f"cannot split {self.llc.ways} ways into {domains} domains"
            )
        self._partition_domains = domains

    @property
    def partitioning_enabled(self) -> bool:
        return self._partition_domains > 0

    def set_domain(self, ctx: int, domain: int) -> None:
        """Program the security domain of a hardware context (the MSR
        write an Apparition/Catalyst-style kernel performs per switch)."""
        if self._partition_domains and not 0 <= domain < self._partition_domains:
            raise SimulationError(f"domain {domain} out of range")
        self._domain_of_ctx[ctx] = domain

    def _llc_allowed_ways(self, ctx: int) -> Optional[range]:
        if not self._partition_domains:
            return None
        domain = self._domain_of_ctx.get(ctx, 0)
        per_domain = self.llc.ways // self._partition_domains
        start = domain * per_domain
        # the last domain absorbs any remainder ways
        end = (
            self.llc.ways
            if domain == self._partition_domains - 1
            else start + per_domain
        )
        return range(start, end)

    def domain_ways(self, domain: int) -> range:
        per_domain = self.llc.ways // max(1, self._partition_domains)
        start = domain * per_domain
        end = (
            self.llc.ways
            if domain == self._partition_domains - 1
            else start + per_domain
        )
        return range(start, end)

    def flush_domain_ways(self, domain: int) -> int:
        """Flush every LLC line in a domain's ways plus the private
        caches (the Apparition flush at a context switch).  Returns the
        number of LLC lines flushed (the cost driver)."""
        flushed = 0
        ways = list(self.domain_ways(domain))
        for tag in self.llc.resident_tags_in_ways(ways):
            self._flush_line_everywhere(tag)
            flushed += 1
        self.stats.counter("domain_flushes").add()
        return flushed

    def flush_private_caches(self, core: int) -> int:
        """Flush a core's L1I/L1D entirely (per-switch private flush)."""
        flushed = 0
        for cache in (self.l1i[core], self.l1d[core]):
            for line_addr in cache.resident_line_addrs():
                evicted = cache.invalidate(line_addr)
                if evicted is not None:
                    if evicted.dirty:
                        self._writeback_to_llc(line_addr)
                    self.directory.remove_sharer(line_addr, cache.name)
                    flushed += 1
        return flushed

    def _flush_line_everywhere(self, line: int) -> None:
        dirty = False
        for cache in self.private_caches():
            evicted = cache.invalidate(line)
            if evicted is not None:
                dirty = dirty or evicted.dirty
        llc_line = self.llc.invalidate(line)
        if llc_line is not None:
            dirty = dirty or llc_line.dirty
        self.directory.drop_line(line)
        if dirty:
            self.dram.writeback(line)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def core_of_ctx(self, ctx: int) -> int:
        core = ctx // self.config.threads_per_core
        if not 0 <= core < self.config.num_cores:
            raise SimulationError(f"hardware context {ctx} out of range")
        return core

    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift

    def private_caches(self) -> List[Cache]:
        return self.l1i + self.l1d

    def all_caches(self) -> List[Cache]:
        return self.private_caches() + [self.llc]

    def _truncate(self, now: int) -> int:
        """Truncate a full cycle count to the Tc timestamp width."""
        return now & self._tc_mask

    @property
    def timecache_enabled(self) -> bool:
        return self.tc_config.enabled

    @property
    def _llc_first_access_guard(self) -> bool:
        """Whether the LLC applies the first-access discipline — under
        TimeCache, and under the FTM comparison mode (LLC-only)."""
        return self.tc_config.enabled or self.tc_config.ftm_mode

    def _llc_sbit_ctx(self, ctx: int) -> int:
        """The identity the LLC tracks visibility by.

        TimeCache: the hardware context (per-thread).  FTM: the physical
        core (directory presence bits are per core — which is exactly why
        FTM cannot separate time-sliced processes or SMT siblings)."""
        if self.tc_config.ftm_mode:
            return self.core_of_ctx(ctx) * self.config.threads_per_core
        return ctx

    # ------------------------------------------------------------------
    # The access protocol
    # ------------------------------------------------------------------
    def access(self, ctx: int, addr: int, kind: AccessKind, now: int) -> AccessResult:
        """Perform one blocking memory access by hardware context ``ctx``.

        ``now`` is the issuing core's local cycle count; fills are
        timestamped with it (truncated to the Tc width).  Returns the
        total observed latency and where the data came from.
        """
        line = self.line_addr(addr)
        core = self.core_of_ctx(ctx)
        l1 = self.l1i[core] if kind is AccessKind.IFETCH else self.l1d[core]
        is_write = kind is AccessKind.STORE
        if is_write and kind is AccessKind.IFETCH:
            raise SimulationError("instruction fetches cannot write")
        self.clock.advance_to(now)
        if self.pre_access_listeners:
            for listener in self.pre_access_listeners:
                listener(ctx, line, kind, now)
        result = self._access_l1(l1, line, ctx, is_write, now)
        self.c_accesses.add()
        if self.post_access_listeners:
            for listener in self.post_access_listeners:
                listener(ctx, line, kind, now, result)
        return result

    #: scalar batched accesses between cooperative deadline checks
    _DEADLINE_CHECK_EVERY = 1024

    def _check_batch_deadline(self, done: int, total: int) -> None:
        """Raise :class:`SimulationTimeout` if the armed wall-clock
        deadline has passed (no-op when none is armed)."""
        deadline = self.batch_deadline
        if deadline is not None and time.monotonic() > deadline:
            raise SimulationTimeout(
                f"wall-clock budget exceeded inside a batched access run "
                f"({done}/{total} accesses executed)"
            )

    def access_batch(
        self,
        ctx: int,
        addrs: Sequence[int],
        kinds: KindsArg = AccessKind.LOAD,
        now: int = 0,
        advance: int = 1,
        nows: Optional[Sequence[int]] = None,
    ) -> BatchResult:
        """Execute a run of same-context accesses; the scalar reference.

        The semantics are *defined* as exactly this loop over
        :meth:`access`: each access issues at the current cycle cursor,
        then the cursor moves by ``advance`` plus the observed latency —
        the blocking TimingSimpleCPU rule (``advance=1`` matches the CPU
        model's one cycle per retired op; ``advance=0`` charges latency
        only, which is what the throughput benchmarks drive).

        Alternatively ``nows`` pins every access to an explicit issue
        time (one non-decreasing entry per address); the returned cursor
        is then the last issue time.  ``kinds`` is either a single
        :class:`AccessKind` applied to the whole run or one per address.

        The fast engine overrides this with a vectorized implementation
        that the differential fuzz checks against this loop.
        """
        prof = self.kernel_profiler
        if prof is None:
            return self._access_batch_scalar(ctx, addrs, kinds, now, advance, nows)
        t0 = perf_counter_ns()
        try:
            return self._access_batch_scalar(ctx, addrs, kinds, now, advance, nows)
        finally:
            # On this path everything is scalar work — which, for the
            # object engine, *is* the phase breakdown: 100% fallback.
            prof.fallback_ns += perf_counter_ns() - t0
            prof.scalar_accesses += len(addrs)

    def _access_batch_scalar(
        self,
        ctx: int,
        addrs: Sequence[int],
        kinds: KindsArg,
        now: int,
        advance: int,
        nows: Optional[Sequence[int]],
    ) -> BatchResult:
        n = len(addrs)
        kseq = _kind_sequence(kinds, n)
        if advance < 0:
            raise SimulationError(f"advance cannot be negative: {advance}")
        results: List[AccessResult] = []
        append = results.append
        access = self.access
        if nows is not None:
            if len(nows) != n:
                raise SimulationError(
                    f"nows has {len(nows)} entries for {n} addresses"
                )
            prev: Optional[int] = None
            for idx, (addr, kind, when) in enumerate(zip(addrs, kseq, nows)):
                if idx % self._DEADLINE_CHECK_EVERY == 0:
                    self._check_batch_deadline(idx, n)
                when = int(when)
                if prev is not None and when < prev:
                    raise SimulationError(
                        f"nows must be non-decreasing ({when} after {prev})"
                    )
                prev = when
                append(access(ctx, int(addr), kind, when))
            return BatchResult(results, now if prev is None else prev)
        cursor = now
        for idx, (addr, kind) in enumerate(zip(addrs, kseq)):
            if idx % self._DEADLINE_CHECK_EVERY == 0:
                self._check_batch_deadline(idx, n)
            result = access(ctx, int(addr), kind, cursor)
            append(result)
            cursor += advance + result.latency
        return BatchResult(results, cursor)

    def _access_l1(
        self, l1: Cache, line: int, ctx: int, is_write: bool, now: int
    ) -> AccessResult:
        l1.c_accesses.add()
        pos = l1.lookup(line)
        if pos is not None:
            set_idx, way = pos
            first = self.timecache_enabled and not l1.sbit_is_set(set_idx, way, ctx)
            if first:
                # First access: tag hit, s-bit clear.  Probe downward for
                # latency; data stays where it is; set the s-bit so later
                # accesses are plain hits.
                l1.c_first_access_misses.add()
                below, level = self._probe_llc(line, ctx, now)
                l1.set_sbit(set_idx, way, ctx)
                latency = l1.hit_latency + below
            else:
                l1.c_hits.add()
                latency, level = l1.hit_latency, "L1"
            l1.touch(set_idx, way, now)
            if is_write:
                latency += self._store_upgrade(l1, line, set_idx, way, now)
            return AccessResult(latency, level, first)

        l1.c_misses.add()
        below, level, llc_first = self._access_llc(l1, line, ctx, is_write, now)
        self._fill_private(l1, line, ctx, is_write, now)
        if self.config.next_line_prefetch:
            self._prefetch_next_line(l1, line + 1, ctx, now)
        return AccessResult(l1.hit_latency + below, level, llc_first)

    def _prefetch_next_line(
        self, l1: Cache, line: int, ctx: int, now: int
    ) -> None:
        """Next-line prefetch on a demand miss (off the critical path).

        The prefetch is issued on behalf of ``ctx``: fills set only its
        s-bit, exactly like a demand fill, so prefetching never weakens
        the first-access discipline for anyone else.
        """
        if l1.lookup(line) is not None:
            return
        l1.stats.counter("prefetches").add()
        llc = self.llc
        if llc.lookup(line) is None:
            self.dram.access(line)  # background fetch; latency hidden
            _, victim = llc.fill(
                line,
                self._llc_sbit_ctx(ctx),
                self._truncate(now),
                LineState.SHARED,
                allowed_ways=self._llc_allowed_ways(ctx),
            )
            if victim is not None:
                self._handle_llc_eviction(victim)
            self.directory.add_sharer(line, l1.name)
        else:
            self.directory.add_sharer(line, l1.name)
        _, victim = l1.fill(line, ctx, self._truncate(now), LineState.SHARED)
        if victim is not None:
            self._handle_private_eviction(l1, victim)

    def _access_llc(
        self, l1: Cache, line: int, ctx: int, is_write: bool, now: int
    ) -> Tuple[int, str, bool]:
        """L1-miss path: get the line from LLC (or DRAM through it).

        Returns (latency below L1, service level, first_access_at_llc).
        """
        llc = self.llc
        llc.c_accesses.add()
        sctx = self._llc_sbit_ctx(ctx)
        pos = llc.lookup(line)
        if pos is not None:
            set_idx, way = pos
            extra, level = self._coherence_on_access(l1, line, is_write, now)
            first = self._llc_first_access_guard and not llc.sbit_is_set(
                set_idx, way, sctx
            )
            if first:
                llc.c_first_access_misses.add()
                dram_latency = self.dram.access(line)  # data discarded
                # Any cache-to-cache transfer overlaps the DRAM probe: the
                # response is released only when DRAM answers, so a remote
                # owner is indistinguishable from plain memory (the
                # Section VII-B coherence-attack mitigation).
                latency = llc.hit_latency + max(dram_latency, extra)
                level = "DRAM"
                llc.set_sbit(set_idx, way, sctx)
            else:
                llc.c_hits.add()
                latency = llc.hit_latency + extra
                if level == "":
                    level = "LLC"
            llc.touch(set_idx, way, now)
            if is_write:
                self.directory.set_owner(line, l1.name)
            else:
                self.directory.add_sharer(line, l1.name)
            return latency, level, first

        llc.c_misses.add()
        dram_latency = self.dram.access(line)
        _, victim = llc.fill(
            line,
            sctx,
            self._truncate(now),
            LineState.SHARED,
            allowed_ways=self._llc_allowed_ways(ctx),
        )
        wb = 0
        if victim is not None:
            wb = self._handle_llc_eviction(victim)
        if is_write:
            self.directory.set_owner(line, l1.name)
        else:
            self.directory.add_sharer(line, l1.name)
        return llc.hit_latency + dram_latency + wb, "DRAM", False

    def _probe_llc(self, line: int, ctx: int, now: int) -> Tuple[int, str]:
        """First-access probe below an L1 that holds the line.

        An inclusive LLC must also hold the line.  If the context's LLC
        s-bit is set the probe is serviced at LLC latency; otherwise the
        probe continues to DRAM (and the LLC s-bit is set, recording the
        context's first access at that level too).  No data moves.

        With ``dram_latency_on_first_access`` (Section VII-B hardening)
        the probe always pays DRAM latency.
        """
        llc = self.llc
        pos = llc.lookup(line)
        if pos is None:
            raise SimulationError(
                f"inclusion violated: line {line:#x} in an L1 but not in LLC"
            )
        set_idx, way = pos
        llc.c_accesses.add()
        llc.touch(set_idx, way, now)
        sctx = self._llc_sbit_ctx(ctx)
        sbit = llc.sbit_is_set(set_idx, way, sctx)
        if sbit and not self.tc_config.dram_latency_on_first_access:
            llc.c_hits.add()
            return llc.hit_latency, "LLC"
        if not sbit:
            llc.c_first_access_misses.add()
            llc.set_sbit(set_idx, way, sctx)
        return llc.hit_latency + self.dram.access(line), "DRAM"

    # ------------------------------------------------------------------
    # Fills, evictions, coherence
    # ------------------------------------------------------------------
    def _fill_private(
        self, l1: Cache, line: int, ctx: int, is_write: bool, now: int
    ) -> None:
        state = LineState.MODIFIED if is_write else LineState.SHARED
        new_line, victim = l1.fill(line, ctx, self._truncate(now), state, dirty=is_write)
        if is_write:
            self._invalidate_other_private(l1, line)
            self.directory.set_owner(line, l1.name)
        if victim is not None:
            self._handle_private_eviction(l1, victim)

    def _store_upgrade(
        self, l1: Cache, line: int, set_idx: int, way: int, now: int
    ) -> int:
        """A store hit: dirty the line, invalidate other private copies."""
        l1.mark_dirty(set_idx, way)
        self._invalidate_other_private(l1, line)
        self.directory.set_owner(line, l1.name)
        return 0

    def _invalidate_other_private(self, requester: Cache, line: int) -> None:
        for cache in self.private_caches():
            if cache.name == requester.name:
                continue
            evicted = cache.invalidate(line)
            if evicted is not None:
                if evicted.dirty:
                    self._writeback_to_llc(line)
                self.directory.remove_sharer(line, cache.name)

    def _coherence_on_access(
        self, requester_l1: Cache, line: int, is_write: bool, now: int
    ) -> Tuple[int, str]:
        """Handle a remote modified copy on an LLC hit.

        Returns (extra latency, level label or "").  A load pulls the dirty
        line out of the owner's L1 (cache-to-cache transfer, downgrading
        the owner to SHARED); a write invalidates every other private copy.
        """
        extra = 0
        level = ""
        owner = self.directory.owner(line)
        if owner and owner != requester_l1.name:
            owner_cache = self._private_by_name(owner)
            pos = owner_cache.lookup(line)
            if pos is not None:
                set_idx, way = pos
                if owner_cache.is_dirty(set_idx, way):
                    extra += self.latency.remote_transfer
                    level = "remote"
                    owner_cache.downgrade(set_idx, way)
                    self._writeback_to_llc(line)
            self.directory.clear_owner(line)
        if is_write:
            self._invalidate_other_private(requester_l1, line)
        return extra, level

    def _private_by_name(self, name: str) -> Cache:
        try:
            return self._private_name_map[name]
        except KeyError:
            raise SimulationError(f"unknown private cache {name!r}") from None

    def _writeback_to_llc(self, line: int) -> None:
        pos = self.llc.lookup(line)
        if pos is None:
            raise SimulationError(
                f"writeback of line {line:#x} but LLC does not hold it"
            )
        set_idx, way = pos
        self.llc.mark_dirty(set_idx, way)

    def _handle_private_eviction(self, l1: Cache, victim: CacheLine) -> None:
        line = victim.tag
        if victim.dirty:
            self._writeback_to_llc(line)
            l1.c_writebacks.add()
        self.directory.remove_sharer(line, l1.name)

    def _handle_llc_eviction(self, victim: CacheLine) -> int:
        """Back-invalidate an evicted LLC line from every private cache.

        Returns the extra latency charged to the access that caused the
        eviction (dirty writeback cost only; back-invalidations are
        metadata operations off the critical path).
        """
        line = victim.tag
        dirty = victim.dirty
        for cache_name in self.directory.drop_line(line):
            cache = self._private_by_name(cache_name)
            evicted = cache.invalidate(line)
            if evicted is not None and evicted.dirty:
                dirty = True
        self.llc.c_back_invalidations.add()
        if dirty:
            self.dram.writeback(line)
            self.llc.c_writebacks.add()
            return self.latency.writeback
        return 0

    # ------------------------------------------------------------------
    # clflush
    # ------------------------------------------------------------------
    def flush(self, ctx: int, addr: int, now: int) -> AccessResult:
        """clflush: remove the line from every cache level.

        Latency is data-dependent (cached lines take longer) unless
        ``constant_time_flush`` is set — the Section VII-C mitigation,
        which makes flush+flush attacks blind.
        """
        line = self.line_addr(addr)
        self.clock.advance_to(now)
        was_cached = False
        dirty = False
        for cache in self.private_caches():
            evicted = cache.invalidate(line)
            if evicted is not None:
                was_cached = True
                dirty = dirty or evicted.dirty
        llc_line = self.llc.invalidate(line)
        if llc_line is not None:
            was_cached = True
            dirty = dirty or llc_line.dirty
        self.directory.drop_line(line)
        if dirty:
            self.dram.writeback(line)
        self.stats.counter("flushes").add()
        if self.tc_config.constant_time_flush:
            latency = self.latency.flush_cached
        else:
            latency = (
                self.latency.flush_cached if was_cached else self.latency.flush_uncached
            )
        return AccessResult(latency, "flush", False)

    # ------------------------------------------------------------------
    # Introspection used by tests and the analysis harness
    # ------------------------------------------------------------------
    def caches_for_ctx(self, ctx: int) -> List[Cache]:
        """Every cache the context's accesses can touch (L1I, L1D, LLC)."""
        core = self.core_of_ctx(ctx)
        return [self.l1i[core], self.l1d[core], self.llc]

    def check_inclusion(self) -> None:
        """Raise if any private line is missing from the LLC (test hook)."""
        for cache in self.private_caches():
            for line in cache.resident_line_addrs():
                if not self.llc.resident(line):
                    raise SimulationError(
                        f"{cache.name} holds {line:#x} but LLC does not"
                    )

    def total_first_access_misses(self) -> int:
        return sum(c.stats.get("first_access_misses") for c in self.all_caches())
