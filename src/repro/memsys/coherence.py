"""LLC-side directory for MESI-lite coherence between private caches.

The directory tracks, per LLC-resident line, which private caches hold a
copy.  It gives the hierarchy what it needs for:

* **store invalidations** — a write by one core invalidates the line in
  every other core's private caches (resetting their s-bits, which the
  TimeCache security argument requires), and
* **remote-transfer latency** — a load that must pull a modified line out
  of another core's L1D observes a distinct latency, which the
  Section VII-B coherence attacks exploit and TimeCache's
  ``dram_latency_on_first_access`` option hides.

The directory is *metadata only*: residency truth lives in the caches and
the directory is kept in sync by the hierarchy.  An inclusive LLC makes
this sufficient — any line in a private cache is also in the LLC.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.common.stats import StatGroup


class Directory:
    """Presence sets keyed by line address; sharers are private-cache ids."""

    def __init__(self) -> None:
        self._sharers: Dict[int, Set[str]] = {}
        self._owner: Dict[int, str] = {}  # private cache holding line dirty
        self.stats = StatGroup("directory")

    def sharers(self, line_addr: int) -> Set[str]:
        return set(self._sharers.get(line_addr, ()))

    def owner(self, line_addr: int) -> str:
        """Private cache id holding the line modified, or '' if none."""
        return self._owner.get(line_addr, "")

    def add_sharer(self, line_addr: int, cache_id: str) -> None:
        sharers = self._sharers.get(line_addr)
        if sharers is None:
            sharers = self._sharers[line_addr] = set()
        sharers.add(cache_id)

    def remove_sharer(self, line_addr: int, cache_id: str) -> None:
        sharers = self._sharers.get(line_addr)
        if sharers is not None:
            sharers.discard(cache_id)
            if not sharers:
                del self._sharers[line_addr]
        if self._owner.get(line_addr) == cache_id:
            del self._owner[line_addr]

    def set_owner(self, line_addr: int, cache_id: str) -> None:
        """Mark ``cache_id`` as holding the only (modified) private copy."""
        self._owner[line_addr] = cache_id
        self.add_sharer(line_addr, cache_id)

    def clear_owner(self, line_addr: int) -> None:
        self._owner.pop(line_addr, None)

    def others(self, line_addr: int, cache_id: str) -> List[str]:
        """Sharers of the line other than ``cache_id``."""
        return [s for s in self._sharers.get(line_addr, ()) if s != cache_id]

    def drop_line(self, line_addr: int) -> Set[str]:
        """Forget a line entirely (LLC eviction/flush); returns old sharers."""
        self._owner.pop(line_addr, None)
        return self._sharers.pop(line_addr, set())

    def tracked_lines(self) -> Iterable[int]:
        return self._sharers.keys()
