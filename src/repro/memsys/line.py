"""Cache line state.

A :class:`CacheLine` carries the *architectural* state of one line slot:
tag, validity, dirtiness, and MESI-lite coherence state.  The TimeCache
metadata (fill timestamp ``Tc`` and the per-hardware-context ``s-bits``)
deliberately lives in flat arrays owned by the enclosing
:class:`~repro.memsys.cache.Cache`, mirroring the paper's hardware layout:
a *separate* transposed SRAM array beside the data array (Figure 3), which
the bit-serial comparator scans in parallel across all lines.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """MESI-lite coherence state of a line in a private cache.

    The shared LLC tracks presence through the directory instead; its lines
    simply use ``SHARED``/``MODIFIED`` to track dirtiness relative to DRAM.
    """

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class CacheLine:
    """One way of one set: tag plus architectural state bits."""

    __slots__ = ("tag", "dirty", "state", "last_used", "filled_at")

    def __init__(self, tag: int, now: int, state: LineState) -> None:
        self.tag = tag
        self.dirty = False
        self.state = state
        #: recency stamp for the LRU policy
        self.last_used = now
        #: insertion stamp for the FIFO policy (distinct from TimeCache's
        #: truncated Tc, which lives in the cache's timestamp array)
        self.filled_at = now

    def touch(self, now: int) -> None:
        self.last_used = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(tag={self.tag:#x}, state={self.state.value}, "
            f"dirty={self.dirty})"
        )
