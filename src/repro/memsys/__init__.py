"""Behavioral memory-system substrate: caches, DRAM, coherence, hierarchy.

This package is the reproduction's stand-in for gem5's memory system.  It
models a blocking (TimingSimpleCPU-style) multi-level cache hierarchy:
private L1I/L1D per core, a shared inclusive LLC, and a DRAM backend, with
MESI-lite coherence between private caches through an LLC directory.

The TimeCache defense (:mod:`repro.core`) hooks this substrate through the
:class:`repro.core.policy.TimeCachePolicy` object that
:class:`~repro.memsys.hierarchy.MemoryHierarchy` consults on every access,
fill, eviction, invalidation, and flush.
"""

from repro.memsys.cache import Cache
from repro.memsys.cacheset import CacheSet
from repro.memsys.coherence import Directory
from repro.memsys.dram import Dram
from repro.memsys.fastengine import FastCache, FastHierarchy
from repro.memsys.hierarchy import (
    AccessKind,
    AccessResult,
    BatchResult,
    MemoryHierarchy,
)
from repro.memsys.line import CacheLine, LineState
from repro.memsys.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_replacement_policy,
)

__all__ = [
    "AccessKind",
    "AccessResult",
    "BatchResult",
    "Cache",
    "CacheLine",
    "CacheSet",
    "Directory",
    "Dram",
    "FastCache",
    "FastHierarchy",
    "FifoPolicy",
    "LineState",
    "LruPolicy",
    "MemoryHierarchy",
    "RandomPolicy",
    "TreePlruPolicy",
    "make_replacement_policy",
]
