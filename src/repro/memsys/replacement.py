"""Replacement policies for set-associative caches.

Each policy is a small strategy object instantiated once per
:class:`~repro.memsys.cacheset.CacheSet`.  The interface is deliberately
narrow — ``on_fill`` / ``on_access`` notifications plus ``victim``
selection — so policies can be swapped per cache level from configuration.

The LRU-state side channel exploited by the Section VII-A "LRU attack"
falls out of :class:`LruPolicy` naturally: the victim's touch of a line
changes which way ``victim()`` returns, which
:mod:`repro.attacks.lru_attack` observes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.memsys.line import CacheLine


class ReplacementPolicy:
    """Interface for per-set replacement decisions."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways

    def on_access(self, way: int, now: int) -> None:
        """A resident line in ``way`` was hit at time ``now``."""

    def on_fill(self, way: int, now: int) -> None:
        """A line was filled into ``way`` at time ``now``."""

    def on_invalidate(self, way: int) -> None:
        """The line in ``way`` was invalidated."""

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        """Pick the way to evict; sets with a free way never call this."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Evict the least-recently-used valid line (exact LRU)."""

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        best_way = -1
        best_time = None
        for way, line in enumerate(lines):
            if line is None:
                raise SimulationError("victim() called with a free way")
            if best_time is None or line.last_used < best_time:
                best_time = line.last_used
                best_way = way
        return best_way


class FifoPolicy(ReplacementPolicy):
    """Evict the line filled the longest ago, regardless of reuse."""

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        best_way = -1
        best_time = None
        for way, line in enumerate(lines):
            if line is None:
                raise SimulationError("victim() called with a free way")
            if best_time is None or line.filled_at < best_time:
                best_time = line.filled_at
                best_way = way
        return best_way


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random valid line (deterministic given the seed)."""

    def __init__(self, ways: int, rng: Optional[DeterministicRng] = None) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else DeterministicRng(ways)

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        return self._rng.randint(0, self.ways - 1)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation of LRU.

    A binary tree of direction bits covers the (power-of-two padded) ways;
    every access flips the bits on its path to point *away* from the
    accessed way, and the victim is found by following the bits.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        size = 1
        while size < ways:
            size *= 2
        self._leaves = size
        self._bits: List[int] = [0] * max(1, size - 1)

    def _touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point away: toward the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point away: toward the left half
                node = 2 * node + 2
                lo = mid
        # nodes beyond the real way count are never reached because
        # victim() clamps to valid ways below.

    def on_access(self, way: int, now: int) -> None:
        self._touch(way)

    def on_fill(self, way: int, now: int) -> None:
        self._touch(way)

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return min(lo, self.ways - 1)


class SrripPolicy(ReplacementPolicy):
    """Static RRIP (Jaleel et al.), the common modern-LLC policy.

    Each way carries a re-reference prediction value (RRPV) of ``bits``
    width; fills insert at ``max-1`` (long re-reference), hits promote to
    0, and the victim is the first way at ``max`` — aging every way when
    none is there yet.  Scan-resistant where LRU thrashes.
    """

    def __init__(self, ways: int, bits: int = 2) -> None:
        super().__init__(ways)
        if bits < 1:
            raise ValueError("RRPV width must be >= 1")
        self._max = (1 << bits) - 1
        self._rrpv: List[int] = [self._max] * ways

    def on_access(self, way: int, now: int) -> None:
        self._rrpv[way] = 0  # hit promotion

    def on_fill(self, way: int, now: int) -> None:
        self._rrpv[way] = self._max - 1  # long re-reference insertion

    def on_invalidate(self, way: int) -> None:
        self._rrpv[way] = self._max

    def victim(self, lines: Sequence[Optional[CacheLine]], now: int) -> int:
        while True:
            for way in range(self.ways):
                if self._rrpv[way] >= self._max:
                    return way
            for way in range(self.ways):
                self._rrpv[way] += 1  # age everyone, retry


def make_replacement_policy(
    name: str, ways: int, rng: Optional[DeterministicRng] = None
) -> ReplacementPolicy:
    """Instantiate a policy by its configuration name."""
    key = name.lower()
    if key == "lru":
        return LruPolicy(ways)
    if key == "fifo":
        return FifoPolicy(ways)
    if key == "random":
        return RandomPolicy(ways, rng)
    if key in ("tree-plru", "plru"):
        return TreePlruPolicy(ways)
    if key == "srrip":
        return SrripPolicy(ways)
    raise ValueError(f"unknown replacement policy {name!r}")
