"""Struct-of-arrays fast engine for the memory hierarchy hot path.

The reference model (:mod:`repro.memsys.cache`, :mod:`.hierarchy`) spends
most of every access allocating and chasing Python objects: a
:class:`~repro.memsys.line.CacheLine` per way, a ``CacheSet`` per set, a
``StatGroup`` dict lookup per counter bump, and a frozen dataclass per
result.  This module provides a second, **semantics-identical** engine
that keeps the same per-slot state in struct-of-arrays form:

* ``tags`` / ``dirty`` / ``last_used`` / ``filled_at`` — numpy arrays
  shaped ``(num_sets, ways)`` with flat views, wrapped in memoryviews
  for the scalar paths (a memoryview scalar read costs about half a
  numpy scalar index, and the batched kernels gather/scatter the same
  buffers wholesale);
* ``tc`` / ``sbits`` / ``valid`` — **canonical numpy arrays with the
  exact dtype and shape of the object engine's**, because the
  context-switch comparator, the fault injector, and the invariant
  checker all read and mutate them in place (``cache.tc[s, w] = ...``
  must keep working against either engine);
* per-slot s-bits packed as per-way int64 context bitmasks — one bit per
  hardware context column, the same convention as the object engine;
* statistics as bare integer attributes (``n_hits`` etc.) snapshotted on
  demand through a ``StatGroup``-compatible adapter.

Equivalence is not aspirational: ``tests/memsys/test_engine_equivalence``
differentially fuzzes both engines over random traces (TimeCache on/off,
context switches, multi-core stores, fault hooks) and asserts identical
``AccessResult`` streams, stat snapshots, and final s-bit/Tc state.  The
contract requires mirroring some subtle reference behaviors exactly:

* ``fill`` stamps ``last_used = filled_at = tc_now`` with the *truncated*
  timestamp while ``touch`` uses the full cycle count — LRU order mixes
  the two, so the fast engine stores exactly the same mixed values;
* victim selection tie-breaks on the lowest way index via a strictly-less
  scan, and a free way (first empty index) always wins;
* the random policy draws from the same :class:`DeterministicRng` fork in
  the same global order.

Supported replacement policies: ``lru``, ``fifo``, ``random``.  The
``tree-plru`` and ``srrip`` policies keep per-way state inside policy
objects and stay object-engine-only; configuring them with
``engine="fast"`` raises :class:`~repro.common.errors.ConfigError`.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from time import perf_counter_ns

import numpy as np

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import DeterministicRng
from repro.common.stats import Counter, StatGroup
from repro.memsys.hierarchy import (
    AccessKind,
    AccessResult,
    BatchResult,
    KindsArg,
    MemoryHierarchy,
)
from repro.memsys.line import LineState

_IFETCH = AccessKind.IFETCH
_STORE = AccessKind.STORE
#: counter name -> FastCache attribute.  "accesses" is NOT here: every
#: access outcome bumps exactly one of hits/misses/first_access_misses
#: (plus ``n_accesses`` for the one probe outcome that bumps neither), so
#: the access count is derived on read instead of bumped on every access.
_STAT_FIELDS: Dict[str, str] = {
    "back_invalidations": "n_back_invalidations",
    "cold_misses": "n_cold_misses",
    "dirty_evictions": "n_dirty_evictions",
    "evictions": "n_evictions",
    "fills": "n_fills",
    "first_access_misses": "n_first_access_misses",
    "hits": "n_hits",
    "invalidations": "n_invalidations",
    "misses": "n_misses",
    "prefetches": "n_prefetches",
    "sbit_restores": "n_sbit_restores",
    "sharer_evictions": "n_sharer_evictions",
    "writebacks": "n_writebacks",
}


class EvictedLine(NamedTuple):
    """What the fast engine returns for a displaced line.

    Duck-compatible with the ``.tag`` / ``.dirty`` reads the hierarchy's
    eviction, writeback, and flush paths perform on a ``CacheLine``.
    """

    tag: int
    dirty: bool


class _FieldCounter:
    """A ``Counter``-shaped handle that reads/writes a FastCache field."""

    __slots__ = ("name", "_cache", "_attr")

    def __init__(self, cache: "FastCache", name: str, attr: str) -> None:
        self.name = name
        self._cache = cache
        self._attr = attr

    @property
    def value(self) -> int:
        return getattr(self._cache, self._attr)

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        setattr(
            self._cache, self._attr, getattr(self._cache, self._attr) + amount
        )

    def reset(self) -> None:
        setattr(self._cache, self._attr, 0)


class _AccessesCounter:
    """Counter handle for the derived ``accesses`` total.

    ``value`` sums the outcome counters; ``add`` lands in the
    ``n_accesses`` adjustment slot (also bumped by the one probe outcome
    that records no hit/miss/first counter).
    """

    __slots__ = ("name", "_cache")

    def __init__(self, cache: "FastCache") -> None:
        self.name = "accesses"
        self._cache = cache

    @property
    def value(self) -> int:
        c = self._cache
        return c.n_hits + c.n_misses + c.n_first_access_misses + c.n_accesses

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counter accesses cannot decrease")
        self._cache.n_accesses += amount

    def reset(self) -> None:
        self._cache.n_accesses = 0


class FastStats:
    """``StatGroup``-compatible view over a FastCache's bare counters.

    Counter presence in :meth:`snapshot` mirrors the lazy/bound-counter
    protocol of the object engine: a counter appears once it has been
    incremented.  Unknown counter names are supported through a side
    table so external instrumentation keeps working.
    """

    __slots__ = ("name", "_cache", "_extra")

    def __init__(self, cache: "FastCache") -> None:
        self.name = cache.name
        self._cache = cache
        self._extra: Dict[str, _FieldCounter] = {}

    def counter(self, name: str):
        if name == "accesses":
            return _AccessesCounter(self._cache)
        attr = _STAT_FIELDS.get(name)
        if attr is not None:
            return _FieldCounter(self._cache, name, attr)
        counter = self._extra.get(name)
        if counter is None:
            counter = Counter(name)
            self._extra[name] = counter
        return counter

    def get(self, name: str) -> int:
        cache = self._cache
        if name == "accesses":
            return (
                cache.n_hits
                + cache.n_misses
                + cache.n_first_access_misses
                + cache.n_accesses
            )
        attr = _STAT_FIELDS.get(name)
        if attr is not None:
            return getattr(cache, attr)
        counter = self._extra.get(name)
        return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, int]:
        items: Dict[str, int] = {}
        cache = self._cache
        accesses = (
            cache.n_hits
            + cache.n_misses
            + cache.n_first_access_misses
            + cache.n_accesses
        )
        if accesses:
            items["accesses"] = accesses
        for key, attr in _STAT_FIELDS.items():
            value = getattr(cache, attr)
            if value:
                items[key] = value
        for key, counter in self._extra.items():
            items[key] = counter.value
        prefix = self.name
        return {f"{prefix}.{key}": items[key] for key in sorted(items)}

    def reset(self) -> None:
        self._cache.n_accesses = 0
        for attr in _STAT_FIELDS.values():
            setattr(self._cache, attr, 0)
        for counter in self._extra.values():
            counter.reset()


class FastCache:
    """Struct-of-arrays drop-in for :class:`repro.memsys.cache.Cache`.

    Implements the same public surface the hierarchy, the context-switch
    engine, the fault models, and the invariant checker use — lookup,
    fill/evict/invalidate, s-bit save/restore/clear, slot accessors —
    with identical observable behavior.  ``fill`` returns only the
    displaced :class:`EvictedLine` (or None); there is no CacheLine
    object to hand back.
    """

    __slots__ = (
        "config",
        "name",
        "hit_latency",
        "line_bytes",
        "num_sets",
        "ways",
        "max_sharers",
        "_set_mask",
        "_ctx_to_col",
        "_ctx_bit_of",
        "tc",
        "sbits",
        "valid",
        "tc_flat",
        "sbits_flat",
        "valid_flat",
        "tc_mv",
        "sbits_mv",
        "valid_mv",
        "tags_np",
        "tags_flat",
        "tags_mv",
        "dirty_np",
        "dirty_flat",
        "last_np",
        "last_flat",
        "filled_np",
        "filled_flat",
        "_tags",
        "_dirty",
        "_last_used",
        "_filled_at",
        "_tag_to_way",
        "_occ",
        "_policy",
        "_victim_stamps",
        "_set_rngs",
        "_ever_filled",
        "event_listener",
        "_event_listeners",
        "stats",
        "n_accesses",
        "n_hits",
        "n_misses",
        "n_first_access_misses",
        "n_fills",
        "n_evictions",
        "n_dirty_evictions",
        "n_cold_misses",
        "n_invalidations",
        "n_writebacks",
        "n_back_invalidations",
        "n_prefetches",
        "n_sharer_evictions",
        "n_sbit_restores",
    )

    def __init__(
        self,
        config: CacheConfig,
        hw_contexts: Sequence[int],
        hit_latency: int,
        rng: Optional[DeterministicRng] = None,
        max_sharers: int = 0,
    ) -> None:
        config.validate()
        if not hw_contexts:
            raise SimulationError(f"{config.name}: needs >= 1 hardware context")
        if max_sharers < 0:
            raise SimulationError(f"{config.name}: max_sharers cannot be negative")
        policy = config.replacement.lower()
        if policy not in ("lru", "fifo", "random"):
            raise ConfigError(
                f"{config.name}: the fast engine supports lru/fifo/random "
                f"replacement, not {config.replacement!r}; use engine='object'"
            )
        self.config = config
        self.name = config.name
        self.hit_latency = hit_latency
        self.line_bytes = config.line_bytes
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self._ctx_to_col: Dict[int, int] = {
            ctx: i for i, ctx in enumerate(hw_contexts)
        }
        if len(self._ctx_to_col) != len(hw_contexts):
            raise SimulationError(f"{config.name}: duplicate hardware contexts")
        self._ctx_bit_of: Dict[int, int] = {
            ctx: 1 << col for ctx, col in self._ctx_to_col.items()
        }
        self.max_sharers = max_sharers
        # Canonical TimeCache metadata: same dtype/shape as the object
        # engine, mutated in place by the comparator and the fault models.
        self.tc = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.sbits = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.valid = np.zeros((self.num_sets, self.ways), dtype=bool)
        # Flat views share memory with the 2-D arrays; scalar indexing on
        # a 1-D view is the cheapest numpy access the hot path gets.
        self.tc_flat = self.tc.reshape(-1)
        self.sbits_flat = self.sbits.reshape(-1)
        self.valid_flat = self.valid.reshape(-1)
        # Memoryviews over the same buffers: scalar reads/writes through a
        # memoryview cost roughly half a numpy scalar index, and every
        # external in-place numpy mutation (comparator, fault models)
        # remains visible through them.
        self.tc_mv = memoryview(self.tc_flat)
        self.sbits_mv = memoryview(self.sbits_flat)
        self.valid_mv = memoryview(self.valid_flat)
        # Architectural slot state: numpy arrays (set * ways + way flat
        # order) so the batched kernels can gather/scatter whole windows,
        # with memoryview aliases for the scalar paths.  MESI-lite keeps
        # line state in lockstep with the dirty flag (MODIFIED iff dirty,
        # else SHARED), so the fast engine stores only the dirty bit;
        # ``state_at`` derives the enum on demand.  ``_tags`` IS
        # ``tags_mv`` — one buffer, no mirror to keep in lockstep.
        self.tags_np = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.tags_flat = self.tags_np.reshape(-1)
        self.tags_mv = memoryview(self.tags_flat)
        self._tags: memoryview = self.tags_mv
        self.dirty_np = np.zeros((self.num_sets, self.ways), dtype=bool)
        self.dirty_flat = self.dirty_np.reshape(-1)
        self._dirty: memoryview = memoryview(self.dirty_flat)
        self.last_np = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.last_flat = self.last_np.reshape(-1)
        self._last_used: memoryview = memoryview(self.last_flat)
        self.filled_np = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.filled_flat = self.filled_np.reshape(-1)
        self._filled_at: memoryview = memoryview(self.filled_flat)
        self._tag_to_way: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self._occ: List[int] = [0] * self.num_sets
        self._policy = policy
        # Victim-scan stamp source, aliasing the recency lists (which are
        # mutated in place, never rebound): last_used for LRU, filled_at
        # for FIFO, None for random.
        if policy == "lru":
            self._victim_stamps: Optional[memoryview] = self._last_used
        elif policy == "fifo":
            self._victim_stamps = self._filled_at
        else:
            self._victim_stamps = None
        # The object engine hands ONE shared rng to every set's random
        # policy (or a per-set default when rng is None); mirror both so
        # the draw sequence is identical.
        if policy == "random":
            if rng is not None:
                self._set_rngs = [rng] * self.num_sets
            else:
                self._set_rngs = [
                    DeterministicRng(self.ways) for _ in range(self.num_sets)
                ]
        else:
            self._set_rngs = []
        self._ever_filled: set = set()
        self.event_listener: Optional[Callable[[str, int, int, int], None]] = None
        self._event_listeners: List[Callable[[str, int, int, int], None]] = []
        self.stats = FastStats(self)
        self.n_accesses = 0
        self.n_hits = 0
        self.n_misses = 0
        self.n_first_access_misses = 0
        self.n_fills = 0
        self.n_evictions = 0
        self.n_dirty_evictions = 0
        self.n_cold_misses = 0
        self.n_invalidations = 0
        self.n_writebacks = 0
        self.n_back_invalidations = 0
        self.n_prefetches = 0
        self.n_sharer_evictions = 0
        self.n_sbit_restores = 0

    # ------------------------------------------------------------------
    # Addressing helpers (object-engine API)
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def tag(self, line_addr: int) -> int:
        return line_addr

    def ctx_column(self, ctx: int) -> int:
        try:
            return self._ctx_to_col[ctx]
        except KeyError:
            raise SimulationError(
                f"{self.name}: hardware context {ctx} does not share this cache"
            ) from None

    def ctx_bit(self, ctx: int) -> int:
        return 1 << self.ctx_column(ctx)

    @property
    def contexts(self) -> List[int]:
        return list(self._ctx_to_col)

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[Tuple[int, int]]:
        set_idx = line_addr & self._set_mask
        way = self._tag_to_way[set_idx].get(line_addr)
        if way is None:
            return None
        return set_idx, way

    def touch(self, set_idx: int, way: int, now: int) -> None:
        self._last_used[set_idx * self.ways + way] = now

    def sbit_is_set(self, set_idx: int, way: int, ctx: int) -> bool:
        return bool(self.sbits_mv[set_idx * self.ways + way] & self.ctx_bit(ctx))

    def set_sbit(self, set_idx: int, way: int, ctx: int) -> None:
        bit = self._ctx_bit_of.get(ctx)
        if bit is None:
            self.ctx_column(ctx)  # raises the object engine's error
        idx = set_idx * self.ways + way
        current = self.sbits_mv[idx]
        if (
            self.max_sharers
            and not current & bit
            and bin(current).count("1") >= self.max_sharers
        ):
            lowest = current & -current
            current &= ~lowest
            self.n_sharer_evictions += 1
        self.sbits_mv[idx] = current | bit
        if self.event_listener is not None:
            self.event_listener("sbit_set", set_idx, way, ctx)

    def add_event_listener(
        self, listener: Callable[[str, int, int, int], None]
    ) -> None:
        """Register a listener without displacing existing observers (the
        same chaining contract as the object engine's Cache).  Note that
        any non-None ``event_listener`` makes the hot paths fall back to
        the event-emitting slow routes — tracing is honest but costs."""
        if self.event_listener is not None and not self._event_listeners:
            self._event_listeners.append(self.event_listener)
        self._event_listeners.append(listener)
        self._rebind_listeners()

    def remove_event_listener(
        self, listener: Callable[[str, int, int, int], None]
    ) -> None:
        self._event_listeners.remove(listener)
        self._rebind_listeners()

    def _rebind_listeners(self) -> None:
        listeners = self._event_listeners
        if not listeners:
            self.event_listener = None
        elif len(listeners) == 1:
            self.event_listener = listeners[0]
        else:
            chain = tuple(listeners)

            def fanout(
                event: str, set_idx: int, way: int, ctx: int, _chain=chain
            ) -> None:
                for fn in _chain:
                    fn(event, set_idx, way, ctx)

            self.event_listener = fanout

    def _victim_way(self, set_idx: int) -> int:
        """Full set: pick the way to evict, mirroring the policies'
        strictly-less / first-index tie-break scans exactly."""
        base = set_idx * self.ways
        stamps = self._victim_stamps
        if stamps is None:
            return self._set_rngs[set_idx].randint(0, self.ways - 1)
        best_way = 0
        best = stamps[base]
        for way in range(1, self.ways):
            stamp = stamps[base + way]
            if stamp < best:
                best = stamp
                best_way = way
        return best_way

    def _victim_way_in(self, set_idx: int, allowed_ways) -> int:
        """CAT-masked victim: free allowed way, else LRU within the mask
        (always LRU regardless of policy, like ``choose_victim_in``)."""
        base = set_idx * self.ways
        tags = self._tags
        for way in allowed_ways:
            if tags[base + way] < 0:
                return way
        best_way = -1
        best = None
        stamps = self._last_used
        for way in allowed_ways:
            stamp = stamps[base + way]
            if best is None or stamp < best:
                best = stamp
                best_way = way
        if best_way < 0:
            raise SimulationError("empty allowed-way mask")
        return best_way

    def fill(
        self,
        line_addr: int,
        ctx: int,
        tc_now: int,
        state: LineState,
        dirty: bool = False,
        allowed_ways=None,
    ) -> Optional[EvictedLine]:
        """Install ``line_addr``; returns the displaced line or None.

        Same semantics as the object engine's fill (fill rule, Tc stamp,
        victim choice) — but returns only the victim, since there is no
        CacheLine object to return for the installed slot.
        """
        set_idx = line_addr & self._set_mask
        ways = self.ways
        base = set_idx * ways
        tags = self._tags
        victim: Optional[EvictedLine] = None
        if allowed_ways is None:
            if self._occ[set_idx] < ways:
                way = 0
                while tags[base + way] >= 0:
                    way += 1
            else:
                way = self._victim_way(set_idx)
                victim = self._evict(set_idx, way)
        else:
            way = self._victim_way_in(set_idx, allowed_ways)
            if tags[base + way] >= 0:
                victim = self._evict(set_idx, way)
        if line_addr in self._tag_to_way[set_idx]:
            raise SimulationError(
                f"duplicate tag {line_addr:#x} in set {set_idx}"
            )
        idx = base + way
        tags[idx] = line_addr
        self._dirty[idx] = dirty
        # CacheLine.__init__ stamps both recency fields with the
        # (truncated) fill time; touch() later overwrites with full time.
        self._last_used[idx] = tc_now
        self._filled_at[idx] = tc_now
        self._tag_to_way[set_idx][line_addr] = way
        self._occ[set_idx] += 1
        self.tc_mv[idx] = tc_now
        self.sbits_mv[idx] = self._ctx_bit_of[ctx]
        self.valid_mv[idx] = True
        if self.event_listener is not None:
            self.event_listener("fill", set_idx, way, ctx)
        self.n_fills += 1
        if line_addr not in self._ever_filled:
            self._ever_filled.add(line_addr)
            self.n_cold_misses += 1
        return victim

    def _evict(self, set_idx: int, way: int) -> EvictedLine:
        idx = set_idx * self.ways + way
        tag = self._tags[idx]
        if tag < 0:
            raise SimulationError(f"remove from empty way {way}")
        was_dirty = self._dirty[idx]
        self._tags[idx] = -1
        del self._tag_to_way[set_idx][tag]
        self._occ[set_idx] -= 1
        self.sbits_mv[idx] = 0
        self.valid_mv[idx] = False
        if self.event_listener is not None:
            self.event_listener("evict", set_idx, way, -1)
        self.n_evictions += 1
        if was_dirty:
            self.n_dirty_evictions += 1
        return EvictedLine(tag, was_dirty)

    def invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        set_idx = line_addr & self._set_mask
        way = self._tag_to_way[set_idx].get(line_addr)
        if way is None:
            return None
        idx = set_idx * self.ways + way
        was_dirty = self._dirty[idx]
        self._tags[idx] = -1
        del self._tag_to_way[set_idx][line_addr]
        self._occ[set_idx] -= 1
        self.sbits_mv[idx] = 0
        self.valid_mv[idx] = False
        if self.event_listener is not None:
            self.event_listener("invalidate", set_idx, way, -1)
        self.n_invalidations += 1
        return EvictedLine(line_addr, was_dirty)

    def resident(self, line_addr: int) -> bool:
        return (
            self._tag_to_way[line_addr & self._set_mask].get(line_addr)
            is not None
        )

    def resident_line_addrs(self) -> List[int]:
        addrs: List[int] = []
        for mapping in self._tag_to_way:
            addrs.extend(mapping)
        return addrs

    @property
    def occupancy(self) -> int:
        return sum(self._occ)

    # ------------------------------------------------------------------
    # Engine-generic slot accessors (see Cache for the contract)
    # ------------------------------------------------------------------
    def mark_dirty(self, set_idx: int, way: int) -> None:
        idx = set_idx * self.ways + way
        if self._tags[idx] < 0:
            raise SimulationError(f"{self.name}: mark_dirty on empty slot")
        self._dirty[idx] = True

    def is_dirty(self, set_idx: int, way: int) -> bool:
        idx = set_idx * self.ways + way
        return self._tags[idx] >= 0 and self._dirty[idx]

    def downgrade(self, set_idx: int, way: int) -> None:
        idx = set_idx * self.ways + way
        if self._tags[idx] < 0:
            raise SimulationError(f"{self.name}: downgrade on empty slot")
        self._dirty[idx] = False

    def resident_tags_in_ways(self, ways: Sequence[int]) -> List[int]:
        tags_out: List[int] = []
        tags = self._tags
        for set_idx in range(self.num_sets):
            base = set_idx * self.ways
            for way in ways:
                tag = tags[base + way]
                if tag >= 0:
                    tags_out.append(tag)
        return tags_out

    # ------------------------------------------------------------------
    # Context-switch support (identical array code to the object engine)
    # ------------------------------------------------------------------
    def save_sbits(self, ctx: int) -> np.ndarray:
        col = self.ctx_column(ctx)
        return ((self.sbits >> col) & 1).astype(bool)

    def restore_sbits(self, ctx: int, saved: Optional[np.ndarray]) -> None:
        col = self.ctx_column(ctx)
        bit = np.int64(1) << col
        self.sbits &= ~bit
        if saved is not None:
            if saved.shape != (self.num_sets, self.ways):
                raise SimulationError(
                    f"{self.name}: saved s-bit shape {saved.shape} != "
                    f"{(self.num_sets, self.ways)}"
                )
            self.sbits |= (saved & self.valid).astype(np.int64) << col
        self.n_sbit_restores += 1

    def clear_sbits_where(self, ctx: int, mask: np.ndarray) -> int:
        col = self.ctx_column(ctx)
        bit = np.int64(1) << col
        before = int(np.count_nonzero(self.sbits & bit))
        self.sbits[mask] &= ~bit
        after = int(np.count_nonzero(self.sbits & bit))
        return before - after

    def clear_all_sbits(self, ctx: int) -> None:
        bit = np.int64(1) << self.ctx_column(ctx)
        self.sbits &= ~bit

    def sbit_save_bytes(self) -> int:
        return (self.config.num_lines + 7) // 8

    def sbit_save_transfers(self, transfer_bytes: int = 64) -> int:
        bytes_needed = self.sbit_save_bytes()
        return (bytes_needed + transfer_bytes - 1) // transfer_bytes

    def counters_into(self, registry, prefix=None, set_groups: int = 4) -> None:
        """Engine-equivalent twin of :meth:`Cache.counters_into`: same
        dotted tree from the same positional arrays."""
        from repro.obs.counters import cache_sbit_census

        name = prefix if prefix is not None else self.name
        for key, value in self.stats.snapshot().items():
            leaf = key.split(".", 1)[1] if "." in key else key
            registry.slot(f"{name}.{leaf}").value += int(value)
        cache_sbit_census(self, registry, f"{name}.", set_groups)


class _FastHierarchyStats(StatGroup):
    """Hierarchy StatGroup whose ``accesses`` counter is derived on read.

    Every hierarchy access bumps exactly one private-cache outcome
    counter (hit, miss, or first-access miss), so the hierarchy access
    total is their sum — no per-access bump needed.  The hierarchy's
    ``n_accesses`` is an adjustment slot for external ``add()`` calls
    (and for rebasing after a reset)."""

    def __init__(self, hier: "FastHierarchy") -> None:
        super().__init__("hierarchy")
        self._hier = hier

    def _sync(self) -> None:
        hier = self._hier
        total = hier.n_accesses
        for cache in hier._private_list:
            total += cache.n_hits + cache.n_misses + cache.n_first_access_misses
        if total or "accesses" in self._counters:
            self.counter("accesses").value = total

    def get(self, name: str) -> int:
        self._sync()
        return super().get(name)

    def snapshot(self) -> Dict[str, int]:
        self._sync()
        return super().snapshot()

    def reset(self) -> None:
        super().reset()
        # Rebase so the derived total reads zero while the (unreset)
        # cache counters keep counting from here.
        hier = self._hier
        hier.n_accesses = -sum(
            c.n_hits + c.n_misses + c.n_first_access_misses
            for c in hier._private_list
        )


class FastHierarchy(MemoryHierarchy):
    """The memory hierarchy driven through :class:`FastCache` levels.

    Reuses the reference topology construction (identical rng fork names,
    so random replacement draws match) and all cold paths — partitioning
    flushes, clflush, inclusion checks — which run unchanged against the
    engine-generic cache surface.  Only the per-access path is overridden,
    with the reference semantics inlined over struct-of-arrays state.
    """

    def __init__(self, config, timecache=None, clock=None, rng=None) -> None:
        super().__init__(config, timecache=timecache, clock=clock, rng=rng)
        threads = config.threads_per_core
        contexts = range(config.num_cores * threads)
        self._l1i_of_ctx = [self.l1i[ctx // threads] for ctx in contexts]
        self._l1d_of_ctx = [self.l1d[ctx // threads] for ctx in contexts]
        self._sctx_of = [self._llc_sbit_ctx(ctx) for ctx in contexts]
        self._private_list = self.l1i + self.l1d
        self._tc_enabled = self.tc_config.enabled
        self._llc_guard = self.tc_config.enabled or self.tc_config.ftm_mode
        self._dram_first = self.tc_config.dram_latency_on_first_access
        self._prefetch_on = config.next_line_prefetch
        #: interned AccessResult instances keyed by (latency, level,
        #: first) — the value set is tiny and the dataclass is frozen, so
        #: sharing instances is safe and skips ~0.5us of construction.
        self._results: Dict[Tuple[int, str, bool], AccessResult] = {}
        #: adjustment slot for the derived hierarchy "accesses" counter
        #: (external add()s and reset rebasing; see _FastHierarchyStats)
        self.n_accesses = 0
        self.stats = _FastHierarchyStats(self)
        self.c_accesses = self.stats.bound_counter("accesses")
        llc = self.llc
        #: per-context L1 hot entries: the cache plus every per-access
        #: attribute (masks, slot lists, memoryviews, this context's
        #: s-bit) resolved once, so the hot path does one list index and
        #: one tuple unpack instead of a dozen attribute/dict loads.
        #: Everything captured is set once and mutated only in place.
        #: The two pre-interned results cover the dominant outcomes (pure
        #: L1 hit, clean LLC hit) without building a lookup key.
        interned = self._intern_result

        def l1_entry(l1: FastCache, ctx: int):
            return (
                l1,
                l1.name,
                l1._set_mask,
                l1._tag_to_way,
                l1.ways,
                l1.hit_latency,
                l1._ctx_bit_of[ctx],
                l1.sbits_mv,
                l1.tc_mv,
                l1.valid_mv,
                l1._tags,
                l1.tags_mv,
                l1._dirty,
                l1._last_used,
                l1._filled_at,
                l1._occ,
                l1._victim_stamps,
                l1._ever_filled,
                interned(l1.hit_latency, "L1"),
                interned(l1.hit_latency + llc.hit_latency, "LLC"),
                range(1, l1.ways),
            )

        self._hot_l1i = [
            l1_entry(self._l1i_of_ctx[ctx], ctx) for ctx in contexts
        ]
        self._hot_l1d = [
            l1_entry(self._l1d_of_ctx[ctx], ctx) for ctx in contexts
        ]
        #: LLC hot state, unpacked only on the L1-miss path; lbit_of maps
        #: each hardware context to its LLC s-bit (via the SMT sibling
        #: representative when llc_sbits_per_core collapses threads)
        self._hot_llc = (
            llc._set_mask,
            llc._tag_to_way,
            llc.ways,
            llc.hit_latency,
            llc.sbits_mv,
            llc._last_used,
            [llc._ctx_bit_of[self._sctx_of[ctx]] for ctx in contexts],
        )
        #: invariant hot state, unpacked once per access (one attribute
        #: load instead of a dozen); everything here is set once and
        #: never rebound (the listener lists mutate only in place)
        self._hot = (
            self.line_shift,
            self._tc_mask,
            self._hot_l1i,
            self._hot_l1d,
            self._sctx_of,
            self._results,
            self.directory._owner,
            self.directory._sharers,
            self.dram,
            llc,
            self.clock,
            self._tc_enabled,
            self._llc_guard,
            self._prefetch_on,
            self.pre_access_listeners,
            self.post_access_listeners,
            self._hot_llc,
        )

    def _make_cache(
        self, config, hw_contexts, hit_latency, rng, max_sharers=0
    ) -> FastCache:
        return FastCache(
            config, hw_contexts, hit_latency, rng, max_sharers=max_sharers
        )

    def _intern_result(
        self, latency: int, level: str, first: bool = False
    ) -> AccessResult:
        key = (latency, level, first)
        result = self._results.get(key)
        if result is None:
            result = AccessResult(latency, level, first)
            self._results[key] = result
        return result

    # ------------------------------------------------------------------
    # The access protocol, inlined
    # ------------------------------------------------------------------
    def access(self, ctx: int, addr: int, kind: AccessKind, now: int) -> AccessResult:
        (
            line_shift,
            tc_mask,
            hot_l1i,
            hot_l1d,
            sctx_of,
            results,
            owners,
            all_sharers,
            dram,
            llc,
            clock,
            tc_enabled,
            llc_guard,
            prefetch_on,
            pre_listeners,
            post_listeners,
            hot_llc,
        ) = self._hot
        if ctx < 0:
            raise SimulationError(f"hardware context {ctx} out of range")
        try:
            (
                l1,
                l1name,
                set_mask,
                t2w_of_set,
                ways,
                hit_latency,
                bit,
                sbits_mv,
                tc_mv,
                valid_mv,
                tags,
                tags_mv,
                dirty,
                last_used,
                filled_at,
                occ,
                victim_stamps,
                ever_filled,
                hit_result,
                llc_hit_result,
                upper_ways,
            ) = (hot_l1i if kind is _IFETCH else hot_l1d)[ctx]
        except IndexError:
            raise SimulationError(
                f"hardware context {ctx} out of range"
            ) from None
        is_write = kind is _STORE
        line = addr >> line_shift
        if now > clock._now:
            clock._now = now
        if pre_listeners:
            for listener in pre_listeners:
                listener(ctx, line, kind, now)
        set_idx = line & set_mask
        t2w = t2w_of_set[set_idx]
        if line in t2w:
            way = t2w[line]
            idx = set_idx * ways + way
            if tc_enabled and not (sbits_mv[idx] & bit):
                l1.n_first_access_misses += 1
                below, level = self._probe_llc(line, ctx, now)
                if l1.event_listener is None and l1.max_sharers == 0:
                    sbits_mv[idx] |= bit
                else:
                    l1.set_sbit(set_idx, way, ctx)
                latency = hit_latency + below
                key = (latency, level, True)
                result = results.get(key)
                if result is None:
                    result = AccessResult(latency, level, True)
                    results[key] = result
            else:
                l1.n_hits += 1
                result = hit_result
            last_used[idx] = now
            if is_write:
                # Store upgrade: dirty the slot, invalidate other private
                # copies, take ownership (the inlined _store_upgrade).
                dirty[idx] = True
                self._invalidate_other_private(l1, line)
                owners[line] = l1name
                sharers = all_sharers.get(line)
                if sharers is None:
                    sharers = all_sharers[line] = set()
                sharers.add(l1name)
        else:
            l1.n_misses += 1
            first = False
            result = None
            # -------- LLC (the inlined _access_llc) --------
            (
                llc_set_mask,
                llc_t2w_of_set,
                llc_ways,
                llc_hit_lat,
                llc_sbits_mv,
                llc_last_used,
                lbit_of,
            ) = hot_llc
            lset = line & llc_set_mask
            lway = llc_t2w_of_set[lset].get(line)
            if lway is not None:
                lidx = lset * llc_ways + lway
                owner = owners.get(line) if owners else None
                if owner is not None and owner != l1name:
                    extra, level = self._remote_owner_transfer(line, owner)
                else:
                    extra = 0
                    level = ""
                if is_write:
                    self._invalidate_other_private(l1, line)
                lbit = lbit_of[ctx]
                if llc_guard and not (llc_sbits_mv[lidx] & lbit):
                    first = True
                    llc.n_first_access_misses += 1
                    dram_latency = dram.access(line)
                    below = llc_hit_lat + (
                        dram_latency if dram_latency > extra else extra
                    )
                    level = "DRAM"
                    if llc.event_listener is None and llc.max_sharers == 0:
                        llc_sbits_mv[lidx] |= lbit
                    else:
                        llc.set_sbit(lset, lway, sctx_of[ctx])
                else:
                    llc.n_hits += 1
                    below = llc_hit_lat + extra
                    if level == "":
                        level = "LLC"
                        if not extra:
                            result = llc_hit_result
                llc_last_used[lidx] = now
                if is_write:
                    owners[line] = l1name
                sharers = all_sharers.get(line)
                if sharers is None:
                    sharers = all_sharers[line] = set()
                sharers.add(l1name)
            else:
                below, level = self._llc_miss(
                    l1, line, ctx, sctx_of[ctx], is_write, now
                )
            # -------- L1 fill (the inlined _fill_private) --------
            if l1.event_listener is not None:
                self._fill_private(l1, line, ctx, is_write, now)
            else:
                base = set_idx * ways
                vtag = -1
                if occ[set_idx] < ways:
                    way = 0
                    while tags[base + way] >= 0:
                        way += 1
                    idx = base + way
                    occ[set_idx] += 1
                    valid_mv[idx] = True
                else:
                    if victim_stamps is None:
                        way = l1._set_rngs[set_idx].randint(0, ways - 1)
                    else:
                        way = 0
                        best = victim_stamps[base]
                        for w in upper_ways:
                            stamp = victim_stamps[base + w]
                            if stamp < best:
                                best = stamp
                                way = w
                    idx = base + way
                    vtag = tags[idx]
                    vdirty = dirty[idx]
                    del t2w[vtag]
                    l1.n_evictions += 1
                    if vdirty:
                        l1.n_dirty_evictions += 1
                    # No s-bit/valid clears here: the slot is refilled
                    # just below, which overwrites sbits and leaves valid
                    # True — the same final state the evict-then-install
                    # pair of the reference engine produces.
                tnow = now & tc_mask
                tags[idx] = line
                dirty[idx] = is_write
                last_used[idx] = tnow
                filled_at[idx] = tnow
                t2w[line] = way
                tc_mv[idx] = tnow
                sbits_mv[idx] = bit
                l1.n_fills += 1
                if line not in ever_filled:
                    ever_filled.add(line)
                    l1.n_cold_misses += 1
                if is_write:
                    self._invalidate_other_private(l1, line)
                    owners[line] = l1name
                    sharers = all_sharers.get(line)
                    if sharers is None:
                        sharers = all_sharers[line] = set()
                    sharers.add(l1name)
                if vtag >= 0:
                    if vdirty:
                        self._writeback_to_llc(vtag)
                        l1.n_writebacks += 1
                    sharers = all_sharers.get(vtag)
                    if sharers is not None:
                        # Unlike Directory.remove_sharer, leave the emptied
                        # set in place: every public reader treats empty and
                        # absent identically, and the next fill of this line
                        # reuses the set instead of reallocating one.
                        sharers.discard(l1name)
                    if owners and owners.get(vtag) == l1name:
                        del owners[vtag]
            if prefetch_on:
                self._prefetch_next_line(l1, line + 1, ctx, now)
            if result is None:
                latency = hit_latency + below
                key = (latency, level, first)
                result = results.get(key)
                if result is None:
                    result = AccessResult(latency, level, first)
                    results[key] = result
        if post_listeners:
            for listener in post_listeners:
                listener(ctx, line, kind, now, result)
        return result

    # ------------------------------------------------------------------
    # Batched access execution (vectorized)
    # ------------------------------------------------------------------
    #: below this batch size the numpy fixed costs beat the win
    _BATCH_MIN = 32
    #: scalar accesses executed after each vectorized window stops at a
    #: boundary, before reclassifying (amortizes classification cost when
    #: boundaries cluster — a miss usually drags dependent misses along)
    _BATCH_SCALAR_RUN = 8
    #: adaptive classification-window bounds (the miss-resolution kernels
    #: retire whole windows, so the ceiling is set by classification cost
    #: amortization, not by boundary density)
    _BATCH_WINDOW_MIN = 32
    _BATCH_WINDOW_MAX = 4096
    #: re-plan rounds allowed per window before a stale reference
    #: cuts the window instead (0 disables conversion entirely)
    _BATCH_REPLANS = 1

    def access_batch(
        self,
        ctx: int,
        addrs,
        kinds: KindsArg = AccessKind.LOAD,
        now: int = 0,
        advance: int = 1,
        nows=None,
    ) -> BatchResult:
        """Vectorized run of same-context accesses.

        Classifies a window of accesses at once with numpy — set index
        and tag extraction, tag match against the ``tags_np`` mirror,
        s-bit presence against the packed per-way bitmasks — and, in the
        common configuration, hands the window to the miss-resolution
        kernels (:meth:`_access_batch_kernel`, docs/internals.md §15),
        which retire hits, first-access misses, fills/evictions, and
        stores without re-entering the scalar loop.  When a gated
        feature is attached (cache event listeners, coherence sharers,
        CAT partitions, open-row DRAM) the prefix-retire fallback below
        runs instead: simple L1 hits retire as array operations and
        every other event takes the scalar path, after which the next
        window reclassifies against the updated state.  The window
        grows while it keeps retiring whole windows and shrinks when
        boundaries cut it short.

        Semantics (results, counters, final s-bit/Tc/LRU state, clock)
        are identical to :meth:`MemoryHierarchy.access_batch`'s scalar
        loop, which the differential fuzz enforces.  With hierarchy
        pre/post access listeners attached the scalar loop runs instead,
        so observers see every access exactly as they would unbatched.
        """
        n = len(addrs)
        if (
            n < self._BATCH_MIN
            or self.pre_access_listeners
            or self.post_access_listeners
            or (isinstance(kinds, AccessKind) and kinds is _STORE)
        ):
            # Listeners must observe every access in order; every store
            # is a boundary, so an all-store batch has no vector work.
            return MemoryHierarchy.access_batch(
                self, ctx, addrs, kinds, now=now, advance=advance, nows=nows
            )
        if advance < 0:
            raise SimulationError(f"advance cannot be negative: {advance}")
        try:
            if ctx < 0:
                raise IndexError
            l1i = self._l1i_of_ctx[ctx]
            l1d = self._l1d_of_ctx[ctx]
        except IndexError:
            raise SimulationError(
                f"hardware context {ctx} out of range"
            ) from None
        addrs_np = np.asarray(addrs, dtype=np.int64)
        lines = addrs_np >> self.line_shift
        if isinstance(kinds, AccessKind):
            uniform: Optional[AccessKind] = kinds
            kseq: Optional[List[AccessKind]] = None
            is_ifetch = is_store = None
            has_store = False
            need_d = kinds is not _IFETCH
            need_i = kinds is _IFETCH
        else:
            uniform = None
            kseq = list(kinds)
            if len(kseq) != n:
                raise SimulationError(
                    f"kinds has {len(kseq)} entries for {n} addresses"
                )
            is_ifetch = np.fromiter(
                (k is _IFETCH for k in kseq), dtype=bool, count=n
            )
            is_store = np.fromiter(
                (k is _STORE for k in kseq), dtype=bool, count=n
            )
            has_store = bool(is_store.any())
            need_d = True
            need_i = bool(is_ifetch.any())
        nows_np = None
        if nows is not None:
            nows_np = np.asarray(nows, dtype=np.int64).reshape(-1)
            if nows_np.size != n:
                raise SimulationError(
                    f"nows has {nows_np.size} entries for {n} addresses"
                )
            if n > 1 and bool(np.any(np.diff(nows_np) < 0)):
                raise SimulationError("nows must be non-decreasing")
        llc = self.llc
        if (
            l1d.event_listener is None
            and l1i.event_listener is None
            and llc.event_listener is None
            and l1d.max_sharers == 0
            and l1i.max_sharers == 0
            and llc.max_sharers == 0
            and self.dram._fixed_latency
            and self._llc_allowed_ways(ctx) is None
        ):
            # The vectorized miss-resolution kernels retire fills,
            # evictions, stores, and first-access misses in-window.  The
            # gated features stay on the scalar-fallback loop below:
            # listeners need a callback per event, max_sharers rewrites
            # s-bit sets on install, CAT partitions constrain victim
            # ways, and open-row DRAM keeps hidden per-access state.
            return self._access_batch_kernel(
                ctx,
                addrs_np,
                lines,
                uniform,
                kseq,
                is_ifetch,
                is_store,
                has_store,
                need_i,
                nows_np,
                now,
                advance,
                l1d,
                l1i,
            )
        tc_enabled = self._tc_enabled
        clock = self.clock
        d_mask, d_ways, d_bit = l1d._set_mask, l1d.ways, l1d._ctx_bit_of[ctx]
        i_mask, i_ways, i_bit = l1i._set_mask, l1i.ways, l1i._ctx_bit_of[ctx]
        d_last, i_last = l1d._last_used, l1i._last_used
        d_hit = self._intern_result(l1d.hit_latency, "L1")
        i_hit = self._intern_result(l1i.hit_latency, "L1")
        # L1I and L1D share one hit latency by construction (both are
        # built with latency.l1_hit), so one stride covers mixed windows.
        step = advance + l1d.hit_latency
        scalar_access = self.access
        results: List[AccessResult] = []
        extend = results.extend
        # Per-context match arrays: a slot matches a line iff its tag
        # equals the line AND (defense off, or the context's s-bit is
        # set) — the whole simple-hit test as one gathered comparison
        # against a sentinel-filled copy.  Vectorized hits never change
        # tags or s-bits, so the copies only go stale across scalar
        # stretches (``stale`` below).  With the defense off the live tag
        # mirrors serve directly and never go stale (in-place updates).
        if tc_enabled:
            d_etag = i_etag = None
            stale = True
        else:
            d_etag = l1d.tags_np
            i_etag = l1i.tags_np
            stale = False
        window = min(256, self._BATCH_WINDOW_MAX)
        scalar_run = self._BATCH_SCALAR_RUN
        cursor = now
        i = 0
        check_deadline = self._check_batch_deadline
        # On this prefix-retire path the phase profiler attributes the
        # vectorized classify + prefix retirement to ``classify`` and the
        # scalar runs to ``fallback`` — there is no plan/rehearse/apply
        # machinery here to break down further.
        prof = self.kernel_profiler
        while i < n:
            # Cooperative watchdog seam: one kernel step can be a whole
            # batched run, so the budget is re-checked between adaptive
            # windows (≤ _BATCH_WINDOW_MAX accesses apart), never
            # mid-window — state stays consistent at the raise point.
            check_deadline(i, n)
            if prof is not None:
                _t0 = perf_counter_ns()
            if stale:
                if need_d:
                    d_etag = np.where(
                        (l1d.sbits & d_bit) != 0, l1d.tags_np, -2
                    )
                if need_i:
                    i_etag = np.where(
                        (l1i.sbits & i_bit) != 0, l1i.tags_np, -2
                    )
                stale = False
            j = min(i + window, n)
            m = j - i
            sl = lines[i:j]
            col = sl[:, None]
            if uniform is not None:
                if uniform is _IFETCH:
                    set_i = sl & i_mask
                    eq_i = i_etag[set_i] == col
                    simple = eq_i.any(axis=1)
                else:
                    set_d = sl & d_mask
                    eq_d = d_etag[set_d] == col
                    simple = eq_d.any(axis=1)
                any_if = uniform is _IFETCH
            else:
                sif = is_ifetch[i:j]
                any_if = bool(sif.any())
                set_d = sl & d_mask
                eq_d = d_etag[set_d] == col
                hit_d = eq_d.any(axis=1)
                if any_if:
                    set_i = sl & i_mask
                    eq_i = i_etag[set_i] == col
                    hit_i = eq_i.any(axis=1)
                    simple = np.where(sif, hit_i, hit_d)
                else:
                    simple = hit_d
                if has_store:
                    simple = simple & ~is_store[i:j]
            k = m if simple.all() else int(np.argmax(~simple))
            if k:
                # Issue times of the prefix.  Within it no fill, evict,
                # or s-bit change can occur, so only each slot's LAST
                # touch survives — dict(zip(...)) dedupes slots with the
                # scalar path's last-write-wins order.
                if nows_np is not None:
                    ts_list = nows_np[i : i + k].tolist()
                    t_last = ts_list[-1]
                else:
                    ts_list = None
                    t_last = cursor + step * (k - 1)
                if uniform is not None:
                    if uniform is _IFETCH:
                        slots = set_i[:k] * i_ways + eq_i[:k].argmax(axis=1)
                        last = i_last
                        l1i.n_hits += k
                        extend([i_hit] * k)
                    else:
                        slots = set_d[:k] * d_ways + eq_d[:k].argmax(axis=1)
                        last = d_last
                        l1d.n_hits += k
                        extend([d_hit] * k)
                    if ts_list is not None:
                        for slot, t in zip(slots.tolist(), ts_list):
                            last[slot] = t
                    else:
                        for slot, p in dict(
                            zip(slots.tolist(), range(k))
                        ).items():
                            last[slot] = cursor + step * p
                else:
                    if ts_list is None:
                        ts_list = (
                            cursor + step * np.arange(k, dtype=np.int64)
                        ).tolist()
                    pif = sif[:k]
                    ni = int(np.count_nonzero(pif)) if any_if else 0
                    if ni == 0:
                        idx_d = set_d[:k] * d_ways + eq_d[:k].argmax(axis=1)
                        for slot, t in zip(idx_d.tolist(), ts_list):
                            d_last[slot] = t
                        l1d.n_hits += k
                        extend([d_hit] * k)
                    elif ni == k:
                        idx_i = set_i[:k] * i_ways + eq_i[:k].argmax(axis=1)
                        for slot, t in zip(idx_i.tolist(), ts_list):
                            i_last[slot] = t
                        l1i.n_hits += k
                        extend([i_hit] * k)
                    else:
                        idx_d = set_d[:k] * d_ways + eq_d[:k].argmax(axis=1)
                        idx_i = set_i[:k] * i_ways + eq_i[:k].argmax(axis=1)
                        dl, il = idx_d.tolist(), idx_i.tolist()
                        flags = pif.tolist()
                        for p in range(k):
                            if flags[p]:
                                i_last[il[p]] = ts_list[p]
                            else:
                                d_last[dl[p]] = ts_list[p]
                        l1i.n_hits += ni
                        l1d.n_hits += k - ni
                        extend(i_hit if f else d_hit for f in flags)
                if t_last > clock._now:
                    clock._now = t_last
                if nows_np is None:
                    cursor = t_last + step
                i += k
            if prof is not None:
                _t1 = perf_counter_ns()
                prof.classify_ns += _t1 - _t0
                prof.windows += 1
                prof.batch_accesses += k
                _t0 = _t1
            if k == m:
                if window < self._BATCH_WINDOW_MAX:
                    window <<= 1
                continue
            if k < (m >> 1) and window > self._BATCH_WINDOW_MIN:
                window >>= 1
            stop = min(i + scalar_run, n)
            _ib = i
            if nows_np is not None:
                while i < stop:
                    kind = uniform if kseq is None else kseq[i]
                    results.append(
                        scalar_access(
                            ctx, int(addrs_np[i]), kind, int(nows_np[i])
                        )
                    )
                    i += 1
            else:
                while i < stop:
                    kind = uniform if kseq is None else kseq[i]
                    result = scalar_access(ctx, int(addrs_np[i]), kind, cursor)
                    results.append(result)
                    cursor += advance + result.latency
                    i += 1
            if prof is not None:
                prof.fallback_ns += perf_counter_ns() - _t0
                prof.cuts += 1
                prof.scalar_accesses += i - _ib
            if tc_enabled:
                stale = True
        final_now = int(nows_np[n - 1]) if nows_np is not None else cursor
        return BatchResult(results, final_now)

    def _access_batch_kernel(
        self,
        ctx: int,
        addrs_np,
        lines,
        uniform: Optional[AccessKind],
        kseq: Optional[List[AccessKind]],
        is_ifetch,
        is_store,
        has_store: bool,
        need_i: bool,
        nows_np,
        now: int,
        advance: int,
        l1d: FastCache,
        l1i: FastCache,
    ) -> BatchResult:
        """Retire whole classified windows — hits, first-access misses,
        fills/evictions, and stores — without the scalar fallback.

        Per adaptive window (pipeline detailed in docs/internals.md §15):

        1. **classify** — one gathered compare per way against the
           per-context effective-tag arrays splits the window into simple
           hits and *specials* (first accesses, misses, stores).
        2. **plan** (read-only) — a sparse walk over the specials groups
           them into cohorts, derives each miss/store outcome from entry
           state, and cuts the window at the first position whose
           classification an earlier special invalidates (same line as
           an earlier event, second fill into one set, ...).  Events the
           kernels cannot retire exactly (foreign owner transfer, LLC
           eviction, store with a remote copy, prefetch side effects)
           become a scalar boundary instead.
        3. **victim rehearsal** (read-only) — LRU victims for evicting
           fills come from an overlay copy of the recency stamps with
           the window's earlier touches scattered in; a later reference
           to a chosen victim line shrinks the cut, since its
           classification is stale once the line is gone.
        4. **apply** — bulk counters, one last-write-wins LRU scatter per
           cache, the s-bit/Tc cohort scatters for first-access misses,
           then a sparse in-order event loop for fills/evictions/stores
           (tag→way dicts, dirty writebacks, ``_ever_filled``, directory
           bookkeeping) against live state.

        Nothing mutates before the cut is final, so a
        :class:`SimulationTimeout` between windows always observes a
        consistent retired prefix, and every cut reason is guaranteed to
        make progress on the next window's reclassification.
        """
        n = int(lines.shape[0])
        llc = self.llc
        dram = self.dram
        clock = self.clock
        directory = self.directory
        owners = directory._owner
        all_sharers = directory._sharers
        tc_enabled = self._tc_enabled
        llc_guard = self._llc_guard
        dram_first = self._dram_first
        ev_ok = not self._prefetch_on
        tc_mask = self._tc_mask
        sctx = self._sctx_of[ctx]
        private_list = self._private_list
        dram_acc = dram.access
        intern = self._intern_result
        shared = LineState.SHARED

        d_mask, d_ways, d_bit = l1d._set_mask, l1d.ways, l1d._ctx_bit_of[ctx]
        i_mask, i_ways, i_bit = l1i._set_mask, l1i.ways, l1i._ctx_bit_of[ctx]
        cinfo = {
            False: (l1d, d_mask, d_ways, d_bit),
            True: (l1i, i_mask, i_ways, i_bit),
        }
        llc_mask, llc_ways = llc._set_mask, llc.ways
        llc_t2w = llc._tag_to_way
        llc_occ = llc._occ
        llc_sbits_mv = llc.sbits_mv
        llc_tags_f = llc._tags
        lbit = llc._ctx_bit_of[sctx]
        # Both L1s share one latency knob (built with latency.l1_hit).
        l1_lat = l1d.hit_latency
        llc_lat = llc.hit_latency
        step = advance + l1_lat
        lat_llc = l1_lat + llc_lat
        lat_dram = lat_llc + dram.latency
        hit_res = intern(l1_lat, "L1")
        res_llc_hit = intern(lat_llc, "LLC")
        res_llc_first = intern(lat_llc, "LLC", True)
        res_dram = intern(lat_dram, "DRAM")
        res_dram_first = intern(lat_dram, "DRAM", True)

        prim = uniform is _IFETCH
        if uniform is not None:
            keys: Tuple[bool, ...] = (prim,)
        else:
            keys = (False, True) if need_i else (False,)

        # Per-context effective tags: tag match AND s-bit set collapse to
        # one gathered compare (-2 never matches a line address).  With
        # Tc disabled the live flat tags serve directly — fills update
        # them in place, so no rebuild is ever needed.
        etf: Dict[bool, Any] = {}
        for kf in keys:
            l1c = cinfo[kf][0]
            if tc_enabled:
                etf[kf] = np.where(
                    (l1c.sbits & cinfo[kf][3]) != 0, l1c.tags_np, -2
                ).reshape(-1)
            else:
                etf[kf] = l1c.tags_flat
        stale = False

        results: List[AccessResult] = []
        extend = results.extend
        append = results.append
        check_deadline = self._check_batch_deadline
        scalar_access = self.access
        wmin = self._BATCH_WINDOW_MIN
        wmax = self._BATCH_WINDOW_MAX
        replan_cap = self._BATCH_REPLANS
        arange = np.arange(min(wmax, n), dtype=np.int64)
        # reusable per-window scratch: latencies, their prefix sum, and
        # issue times are rebuilt every re-plan round, so allocating them
        # once is a measurable win at large windows
        lat_buf = np.empty(min(wmax, n), dtype=np.int64)
        cs_buf = np.empty_like(lat_buf)
        t_buf = np.empty_like(lat_buf)
        adv_ar = advance * arange if advance else None
        # evicted-line scan LUT: when line addresses are small ints a
        # reusable byte mask makes the membership test one gather
        # instead of a sort-based isin per round
        lmax = int(lines.max()) if n else -1
        vmask = (
            np.zeros(lmax + 1, dtype=bool)
            if 0 <= lmax < (1 << 22)
            else None
        )
        window = min(256, wmax)
        cursor = now
        i = 0
        # Wall-clock phase profiler (repro.obs.spans.PhaseAccumulator).
        # ``None`` is the common case and costs one load per window plus
        # guarded branches at the phase boundaries; when installed, each
        # boundary adds one perf_counter_ns call and an int add.  The
        # replan loop can break out of the plan walk directly, so ``_reh``
        # tracks whether the open segment is plan or rehearsal time.
        prof = self.kernel_profiler
        while i < n:
            check_deadline(i, n)
            if prof is not None:
                _t0 = perf_counter_ns()
            if stale:
                # a scalar run moved tags/s-bits under the etag mirrors
                for kf in keys:
                    l1c = cinfo[kf][0]
                    etf[kf] = np.where(
                        (l1c.sbits & cinfo[kf][3]) != 0, l1c.tags_np, -2
                    ).reshape(-1)
                stale = False
            j = i + window
            if j > n:
                j = n
            m = j - i
            sl = lines[i:j]
            if uniform is None:
                sif = is_ifetch[i:j]
                sst = is_store[i:j]
            else:
                sif = sst = None
            # ---- phase 1: classify -------------------------------------
            hits = {}
            slots_c = {}
            for kf in keys:
                cways = cinfo[kf][2]
                base = (sl & cinfo[kf][1]) * cways
                cetf = etf[kf]
                h = cetf[base] == sl
                wsel = np.zeros(m, dtype=np.int64)
                for w in range(1, cways):
                    eqw = cetf[base + w] == sl
                    wsel[eqw] = w
                    h |= eqw
                hits[kf] = h
                slots_c[kf] = base + wsel
            if uniform is not None:
                simple = hits[prim]
            elif need_i:
                simple = np.where(sif, hits[True], hits[False])
            else:
                simple = hits[False].copy()
            if sst is not None and has_store:
                simple &= ~sst
            nspec = m - int(np.count_nonzero(simple))
            if prof is not None:
                _tp = perf_counter_ns()
                prof.classify_ns += _tp - _t0
                prof.windows += 1

            if nspec == 0:
                # whole window is simple hits: touch + count + results
                if nows_np is not None:
                    times = nows_np[i:j]
                else:
                    times = cursor + step * arange[:m]
                    cursor += step * m
                if uniform is not None:
                    l1u = cinfo[prim][0]
                    l1u.last_flat[slots_c[prim]] = times
                    l1u.n_hits += m
                elif need_i:
                    di = ~sif
                    nd = int(np.count_nonzero(di))
                    if nd:
                        l1d.last_flat[slots_c[False][di]] = times[di]
                        l1d.n_hits += nd
                    if nd < m:
                        l1i.last_flat[slots_c[True][sif]] = times[sif]
                        l1i.n_hits += m - nd
                else:
                    l1d.last_flat[slots_c[False]] = times
                    l1d.n_hits += m
                extend([hit_res] * m)
                t_last = int(times[m - 1])
                if t_last > clock._now:
                    clock._now = t_last
                if prof is not None:
                    prof.apply_ns += perf_counter_ns() - _tp
                    prof.batch_accesses += m
                i = j
                if m == window and window < wmax:
                    window <<= 1
                continue

            # ---- phase 2: plan (read-only walk over the specials) ------
            # A reference to a line evicted earlier in the window was
            # classified against entry state that no longer holds it.
            # Rather than cutting the window there, convert the stale
            # positions into forced misses and re-plan (the numpy
            # classification is reused; only the cheap sparse phases
            # rerun), falling back to a cut after a few rounds.
            stale_pos: set = set()
            replans = 0
            _reh = False
            while True:
                nsm = ~simple
                ns_pos = np.nonzero(nsm)[0].tolist()
                ns_lines = sl[nsm].tolist()
                if uniform is None:
                    ns_if = sif[nsm].tolist()
                    ns_st = sst[nsm].tolist()
                else:
                    ns_if = ns_st = None
                cut = m
                hard = False
                # line → (cache, way-or--2, set, llc_sbit_known_set): every
                # line an event has already acted on this window.  Way -2
                # means "installed by an in-window fill": the slot is
                # resolved by the rehearsal (plan-time) and the live
                # tag→way dict (apply-time).  The last element records
                # whether the event guaranteed the line's LLC s-bit is set
                # (probes and fills do), which a later re-fill of the same
                # line needs because entry LLC state went stale.
                inwin: Dict[int, Tuple[bool, int, int, bool]] = {}
                occ_sim: Dict[Tuple[bool, int], int] = {}
                locc_sim: Dict[int, int] = {}
                # line → LLC slot of an in-window LLC fill: fill() scans
                # for the first free way, so the plan can rehearse the
                # choice and later re-fills see a valid LLC hit
                llc_new: Dict[int, int] = {}
                llc_taken: Dict[int, set] = {}
                b_first: Dict[bool, dict] = {False: {}, True: {}}
                b_pos: list = []
                b_slot: list = []
                b_lidx: list = []
                b_line: list = []
                b_isif: list = []
                bhits: list = []  # (pos, slot, is_ifetch) — extra plain hits
                pend: list = []  # (pos, line, is_ifetch, counts_as_hit)
                # (pos, is_if, is_st, code, line, set, way, lidx, flag, lat,
                # result); codes: 0 store-hit, 1 store-probe, 2 miss with an
                # LLC hit, 3 miss with an LLC fill (lidx carries the LLC set)
                events: list = []
                evicting: list = []  # event indices that displace an L1 line
                for sx in range(len(ns_pos)):
                    q = ns_pos[sx]
                    line = ns_lines[sx]
                    if ns_if is None:
                        e_if = prim
                        e_st = False
                    else:
                        e_if = ns_if[sx]
                        e_st = ns_st[sx]
                    l1c, cmask, cways, cbit = cinfo[e_if]
                    forced = bool(stale_pos) and q in stale_pos
                    prev_lsb = False
                    refill = False
                    if forced:
                        fprev = inwin.get(line)
                        if fprev is not None:
                            # filled in-window, then evicted: plan a second
                            # fill, carrying what the first one established
                            # about the LLC s-bit (entry state is stale)
                            if fprev[0] != e_if:
                                cut = q
                                break
                            prev_lsb = fprev[3]
                            refill = True
                        prev = None
                    else:
                        prev = inwin.get(line)
                    if prev is not None:
                        # an earlier event already resolved this line: it is
                        # resident with the s-bit set, so this is a plain hit
                        # (or a store upgrade of one)
                        p_if, p_w, p_set, _p_lsb = prev
                        if p_if != e_if:
                            # cross-cache replay would need LLC re-planning
                            cut = q
                            break
                        if not e_st:
                            if p_w >= 0:
                                bhits.append((q, p_set * cways + p_w, e_if))
                            else:
                                pend.append((q, line, e_if, True))
                            continue
                        other_copy = False
                        for c in private_list:
                            if (
                                c is not l1c
                                and c._tag_to_way[line & c._set_mask].get(line)
                                is not None
                            ):
                                other_copy = True
                                break
                        if other_copy:
                            # entry state may still hold a foreign copy the
                            # in-window events never checked — invalidating
                            # it is scalar work
                            cut = q
                            hard = True
                            break
                        events.append(
                            (q, e_if, True, 0, line, p_set, p_w, -1, False,
                             l1_lat, hit_res)
                        )
                        if p_w < 0:
                            pend.append((q, line, e_if, False))
                        continue
                    set_ = line & cmask
                    # a forced (stale-converted) position is a miss even
                    # though entry state still shows the line resident
                    w = None if forced else l1c._tag_to_way[set_].get(line)
                    b_own = b_first[e_if]
                    b_other = b_first[not e_if]
                    if w is not None and not e_st:
                        # resident, s-bit clear: a first-access miss (B)
                        bprev = b_own.get(line)
                        if bprev is not None:
                            # repeat: the first probe set the s-bit, so this
                            # retires as a plain hit
                            bhits.append((q, bprev[1], e_if))
                            continue
                        if line in b_other:
                            # the other cache's probe already set the shared
                            # LLC s-bit; the entry-state plan is stale
                            cut = q
                            break
                        lset = line & llc_mask
                        lw = llc_t2w[lset].get(line)
                        if lw is None:
                            # inclusion violated — the scalar path raises it
                            cut = q
                            hard = True
                            break
                        slot = set_ * cways + w
                        b_pos.append(q)
                        b_slot.append(slot)
                        b_lidx.append(lset * llc_ways + lw)
                        b_line.append(line)
                        b_isif.append(e_if)
                        b_own[line] = (q, slot)
                        continue
                    if w is not None:
                        # resident store: upgrade (dirty + ownership), with a
                        # probe first when the s-bit is clear
                        bprev = b_own.get(line)
                        if line in b_other:
                            cut = q
                            break
                        other_copy = False
                        for c in private_list:
                            if (
                                c is not l1c
                                and c._tag_to_way[line & c._set_mask].get(line)
                                is not None
                            ):
                                other_copy = True
                                break
                        if other_copy:
                            # invalidating the remote copy is scalar work
                            cut = q
                            hard = True
                            break
                        idx = set_ * cways + w
                        lsbk = True
                        if bprev is not None or not tc_enabled or (
                            l1c.sbits_mv[idx] & cbit
                        ):
                            # s-bit already set (possibly by an earlier B,
                            # which also set the LLC s-bit; a plain L1
                            # s-bit says nothing about the LLC's)
                            lsbk = bprev is not None
                            events.append(
                                (q, e_if, True, 0, line, set_, w, -1, False,
                                 l1_lat, hit_res)
                            )
                        else:
                            lset = line & llc_mask
                            lw = llc_t2w[lset].get(line)
                            if lw is None:
                                cut = q
                                hard = True
                                break
                            lidx = lset * llc_ways + lw
                            lsb = bool(llc_sbits_mv[lidx] & lbit)
                            if lsb and not dram_first:
                                events.append(
                                    (q, e_if, True, 1, line, set_, w, lidx,
                                     True, lat_llc, res_llc_first)
                                )
                            else:
                                events.append(
                                    (q, e_if, True, 1, line, set_, w, lidx,
                                     lsb, lat_dram, res_dram_first)
                                )
                        inwin[line] = (e_if, w, set_, lsbk)
                        continue
                    # not resident in its L1: a real miss
                    if not ev_ok:
                        # the next-line prefetch issues extra fills/fetches
                        cut = q
                        hard = True
                        break
                    if line in b_own or line in b_other:
                        cut = q
                        break
                    owner = owners.get(line)
                    if owner is not None and owner != l1c.name:
                        # foreign owner transfer (possible dirty pull)
                        cut = q
                        hard = True
                        break
                    if e_st:
                        other_copy = False
                        for c in private_list:
                            if (
                                c is not l1c
                                and c._tag_to_way[line & c._set_mask].get(line)
                                is not None
                            ):
                                other_copy = True
                                break
                        if other_copy:
                            cut = q
                            hard = True
                            break
                    lset = line & llc_mask
                    lw = llc_t2w[lset].get(line)
                    if lw is not None:
                        lidx = lset * llc_ways + lw
                        if (
                            llc_guard
                            and not prev_lsb
                            and not (llc_sbits_mv[lidx] & lbit)
                        ):
                            ev = (q, e_if, e_st, 2, line, set_, -1, lidx,
                                  True, lat_dram, res_dram_first)
                        else:
                            ev = (q, e_if, e_st, 2, line, set_, -1, lidx,
                                  False, lat_llc, res_llc_hit)
                    elif refill and line in llc_new:
                        # the first fill installed the line in the LLC at
                        # a rehearsed way: the re-fill is an LLC hit
                        ev = (q, e_if, e_st, 2, line, set_, -1,
                              llc_new[line], False, lat_llc, res_llc_hit)
                    elif refill:
                        cut = q
                        break
                    else:
                        locc = locc_sim.get(lset)
                        if locc is None:
                            locc = llc_occ[lset]
                        if locc >= llc_ways:
                            # LLC eviction (back-invalidations) stays scalar
                            cut = q
                            hard = True
                            break
                        locc_sim[lset] = locc + 1
                        lbase = lset * llc_ways
                        taken = llc_taken.get(lset)
                        lwf = 0
                        while llc_tags_f[lbase + lwf] >= 0 or (
                            taken is not None and lwf in taken
                        ):
                            lwf += 1
                        if taken is None:
                            llc_taken[lset] = {lwf}
                        else:
                            taken.add(lwf)
                        llc_new[line] = lbase + lwf
                        ev = (q, e_if, e_st, 3, line, set_, -1, lset, False,
                              lat_dram, res_dram)
                    okey = (e_if, set_)
                    occ = occ_sim.get(okey)
                    if occ is None:
                        occ = l1c._occ[set_]
                    if occ >= cways:
                        if l1c._victim_stamps is None:
                            # random replacement draws from the per-set rng —
                            # a rehearsed draw could not be rolled back
                            cut = q
                            hard = True
                            break
                        evicting.append(len(events))
                    else:
                        occ_sim[okey] = occ + 1
                    events.append(ev)
                    inwin[line] = (e_if, -2, set_, True)

                # ---- latencies and issue times -----------------------------
                nb_all = len(b_pos)
                if nb_all:
                    b_pos_np = np.array(b_pos, dtype=np.int64)
                    b_lidx_np = np.array(b_lidx, dtype=np.int64)
                    b_sb = (llc.sbits_flat[b_lidx_np] & lbit) != 0
                cs = None
                if nows_np is not None:
                    times = nows_np[i : i + cut]
                else:
                    lat = lat_buf[:cut]
                    lat.fill(l1_lat)
                    if nb_all:
                        if dram_first:
                            lat[b_pos_np] = lat_dram
                        else:
                            lat[b_pos_np] = np.where(b_sb, lat_llc, lat_dram)
                    for ev in events:
                        lat[ev[0]] = ev[9]
                    cs = np.cumsum(lat, out=cs_buf[:cut])
                    times = np.subtract(cs, lat, out=t_buf[:cut])
                    if adv_ar is not None:
                        times += adv_ar[:cut]
                    times += cursor

                # ---- LRU touch plan (also feeds the victim rehearsal) ------
                touch = {}
                for kf in keys:
                    if uniform is not None:
                        touch[kf] = simple.copy()
                    elif kf:
                        touch[kf] = simple & sif
                    else:
                        touch[kf] = simple & ~sif if need_i else simple.copy()
                for q, slot, f in bhits:
                    touch[f][q] = True
                    slots_c[f][q] = slot
                for x in range(nb_all):
                    f = b_isif[x]
                    touch[f][b_pos[x]] = True
                    slots_c[f][b_pos[x]] = b_slot[x]
                for ev in events:
                    # resident stores touch like hits (pending slots — way
                    # -2, stores to in-window fills — patch after rehearsal)
                    if ev[3] <= 1 and ev[6] >= 0:
                        f = ev[1]
                        touch[f][ev[0]] = True
                        slots_c[f][ev[0]] = ev[5] * cinfo[f][2] + ev[6]

                if prof is not None:
                    _t1 = perf_counter_ns()
                    prof.plan_ns += _t1 - _tp
                    prof.events += len(events)
                    _tp = _t1
                    _reh = True

                # ---- phase 3: victim rehearsal + stale-victim hazard -------
                # Replay every fill of a cache, in order, against an overlay
                # of its replacement stamps (touches scattered in for LRU,
                # truncated fill stamps for both policies) plus a tag
                # overlay, so chained same-set fills pick the exact victims
                # the in-order scalar loop would.
                victim_of: Dict[int, int] = {}
                fill_slot: Dict[int, int] = {}
                fill_seq: Dict[int, list] = {}
                vline_ev: Dict[Tuple[int, bool], list] = {}
                vlines: list = []
                if evicting or pend:
                    evset = set(evicting)
                    for kf in keys:
                        fills_c = [
                            ei
                            for ei, ev in enumerate(events)
                            if ev[1] == kf and ev[3] >= 2
                        ]
                        if not fills_c:
                            continue
                        has_ev = any(ei in evset for ei in fills_c)
                        pend_c = [p for p in pend if p[2] == kf]
                        if not has_ev and not pend_c:
                            continue
                        l1c, _, cways, _ = cinfo[kf]
                        tags_live = l1c.tags_flat
                        sim_tags: Dict[int, int] = {}
                        tpos = tsl = tt = None
                        # the overlay lives as a plain list: the arrays are
                        # a few hundred slots and the loop is scalar, where
                        # list indexing beats numpy call overhead
                        if not has_ev:
                            # only pending-hit slots are needed: a free-way
                            # sim suffices, no stamp overlay
                            ov = None
                        elif l1c._victim_stamps is l1c._filled_at:
                            # FIFO: touches never move the fill stamps
                            ov = l1c.filled_flat.copy()
                        else:
                            ov = l1c.last_flat.copy()
                            tpos = np.nonzero(touch[kf][:cut])[0]
                            tsl = slots_c[kf][tpos]
                            tt = times[tpos]
                        done = 0
                        pi = 0
                        npc = len(pend_c)
                        fpos = np.array(
                            [events[ei][0] for ei in fills_c],
                            dtype=np.int64,
                        )
                        if ov is not None:
                            ftimes = (times[fpos] & tc_mask).tolist()
                        if tpos is not None:
                            uptos = np.searchsorted(tpos, fpos).tolist()
                            if npc:
                                ptimes = times[
                                    np.array(
                                        [p[0] for p in pend_c],
                                        dtype=np.int64,
                                    )
                                ].tolist()
                        for fx, ei in enumerate(fills_c):
                            ev = events[ei]
                            if tpos is not None:
                                upto = uptos[fx]
                                if upto > done:
                                    ov[tsl[done:upto]] = tt[done:upto]
                                    done = upto
                                # pending hits touch the slot their fill
                                # resolved to (always an earlier fill here)
                                while pi < npc and pend_c[pi][0] < ev[0]:
                                    ov[fill_slot[pend_c[pi][1]]] = ptimes[pi]
                                    pi += 1
                            base = ev[5] * cways
                            if ei in evset:
                                fw = int(ov[base : base + cways].argmin())
                                idx = base + fw
                                vline = sim_tags.get(idx)
                                if vline is None:
                                    vline = int(tags_live[idx])
                                victim_of[ei] = fw
                                vlines.append(vline)
                                vkey = (vline, kf)
                                evs = vline_ev.get(vkey)
                                if evs is None:
                                    vline_ev[vkey] = [ev[0]]
                                else:
                                    evs.append(ev[0])
                            else:
                                fw = 0
                                while True:
                                    idx = base + fw
                                    tag = sim_tags.get(idx)
                                    if tag is None:
                                        tag = tags_live[idx]
                                    if tag < 0:
                                        break
                                    fw += 1
                            if ov is not None:
                                ov[idx] = ftimes[fx]
                            sim_tags[idx] = ev[4]
                            fill_slot[ev[4]] = idx
                            fs = fill_seq.get(ev[4])
                            if fs is None:
                                fill_seq[ev[4]] = [(ev[0], idx)]
                            else:
                                fs.append((ev[0], idx))
                # any later reference to an evicted line was classified
                # against entry state that no longer holds it: convert
                # those positions to forced misses and re-plan (or cut)
                stale_new: list = []
                respec_new: list = []
                bad = -1
                if vlines:
                    # in-window refills (converted misses) make later
                    # references to the same line valid pends again
                    refills: Dict[Tuple[int, bool], list] = {}
                    if stale_pos:
                        for ev in events:
                            if ev[3] >= 2:
                                refills.setdefault(
                                    (ev[4], ev[1]), []
                                ).append(ev[0])
                        # conversions shift LRU stamps, which can shift
                        # victim choices: every prior conversion must
                        # stay justified (line evicted, not since
                        # refilled, before the position) under the
                        # re-planned schedule, else its forced miss
                        # would double-fill a still-resident line
                        for p0 in sorted(stale_pos):
                            if p0 >= cut:
                                break
                            kf0 = (
                                prim
                                if uniform is not None
                                else bool(sif[p0])
                            )
                            key0 = (int(sl[p0]), kf0)
                            laste0 = -1
                            for x in vline_ev.get(key0, ()):
                                if x < p0:
                                    laste0 = x
                                else:
                                    break
                            lastr0 = -1
                            for x in refills.get(key0, ()):
                                if x < p0:
                                    lastr0 = x
                                else:
                                    break
                            if laste0 < 0 or lastr0 > laste0:
                                bad = p0
                                break
                    # the scan still runs with ``bad`` set: the same
                    # re-planned schedule that invalidated a prior
                    # conversion can make a reference *before* ``bad``
                    # newly stale, and the cut must cover that too
                    seen_new: set = set()
                    if vmask is not None and 0 <= min(vlines) and max(
                        vlines
                    ) <= lmax:
                        vl = np.array(vlines, dtype=np.int64)
                        vmask[vl] = True
                        matches = np.nonzero(vmask[sl[:cut]])[0]
                        vmask[vl] = False
                    else:
                        matches = np.nonzero(
                            np.isin(
                                sl[:cut],
                                np.array(vlines, dtype=np.int64),
                            )
                        )[0]
                    for p in matches.tolist():
                        if p in stale_pos:
                            continue
                        # only the evicting cache's own references went
                        # stale; the other L1's state is untouched
                        kf_p = (
                            prim if uniform is not None else bool(sif[p])
                        )
                        key = (int(sl[p]), kf_p)
                        evs = vline_ev.get(key)
                        if evs is None:
                            continue
                        laste = -1
                        for x in evs:
                            if x < p:
                                laste = x
                            else:
                                break
                        if laste < 0:
                            continue
                        lastr = -1
                        for x in refills.get(key, ()):
                            if x < p:
                                lastr = x
                            else:
                                break
                        if lastr > laste:
                            # refilled since the eviction: the reference
                            # is valid again, but a still-simple plan
                            # points at the pre-eviction slot — reroute
                            # it through the walk to land as a pend
                            if bool(simple[p]):
                                respec_new.append(p)
                            continue
                        # convert only the first stale reference per
                        # line: once it refills, the rest become pends
                        if key in seen_new:
                            continue
                        seen_new.add(key)
                        stale_new.append(p)
                elif stale_pos:
                    # the re-plan lost every eviction (an earlier cut):
                    # no conversion before the cut can be justified
                    for p0 in sorted(stale_pos):
                        if p0 < cut:
                            bad = p0
                        break
                if bad >= 0:
                    # unstable fixpoint: cut just before the first
                    # contested position — the invalidated conversion or
                    # the earliest newly-stale reference, whichever comes
                    # first; the plan ahead of the cut carries no known
                    # hazard
                    if stale_new or respec_new:
                        bad = min(bad, min(stale_new + respec_new))
                    if bad < cut:
                        cut = bad
                        hard = False
                    break
                if not stale_new and not respec_new:
                    break
                if replans >= replan_cap:
                    # not converging: cut at the first stale reference
                    pmin = min(stale_new + respec_new)
                    if pmin < cut:
                        cut = pmin
                        hard = False
                    break
                replans += 1
                stale_pos.update(stale_new)
                simple[
                    np.array(stale_new + respec_new, dtype=np.int64)
                ] = False
                if prof is not None:
                    _t1 = perf_counter_ns()
                    prof.rehearse_ns += _t1 - _tp
                    prof.replans += 1
                    _tp = _t1
                    _reh = False

            if prof is not None:
                _t1 = perf_counter_ns()
                if _reh:
                    prof.rehearse_ns += _t1 - _tp
                else:
                    prof.plan_ns += _t1 - _tp
                _tp = _t1

            # ---- drop planned work past a shrunken cut -----------------
            C = cut
            while events and events[-1][0] >= C:
                events.pop()
            if nb_all and b_pos[-1] >= C:
                nbk = int(np.searchsorted(b_pos_np, C))
                b_pos_np = b_pos_np[:nbk]
                b_lidx_np = b_lidx_np[:nbk]
                b_sb = b_sb[:nbk]
                b_pos = b_pos[:nbk]
                b_slot = b_slot[:nbk]
                b_line = b_line[:nbk]
                b_isif = b_isif[:nbk]
                nb_all = nbk
            times = times[:C]
            if nows_np is not None:
                adv = 0
            else:
                adv = advance * C + (int(cs[C - 1]) if C else 0)

            # pending hits are plain hits; their LRU touches land on fill
            # slots, so they are applied after the event loop (a fill's
            # truncated stamp must not clobber a later touch)
            for q, _line, f, counts in pend:
                if q >= C:
                    break
                if counts:
                    cinfo[f][0].n_hits += 1

            # ---- phase 4: apply ----------------------------------------
            if C:
                if uniform is not None:
                    cinfo[prim][0].n_hits += int(
                        np.count_nonzero(simple[:C])
                    )
                elif need_i:
                    sc = simple[:C]
                    nhi = int(np.count_nonzero(sc & sif[:C]))
                    l1i.n_hits += nhi
                    l1d.n_hits += int(np.count_nonzero(sc)) - nhi
                else:
                    l1d.n_hits += int(np.count_nonzero(simple[:C]))
                for q, _slot, f in bhits:
                    if q < C:
                        cinfo[f][0].n_hits += 1

                if nb_all:
                    # first-access-miss cohort: LLC probes in bulk
                    llc.last_flat[b_lidx_np] = times[b_pos_np]
                    clear = b_lidx_np[~b_sb]
                    nclear = int(clear.shape[0])
                    nsb = nb_all - nclear
                    if nclear:
                        llc.sbits_flat[clear] |= lbit
                        llc.n_first_access_misses += nclear
                    if dram_first:
                        llc.n_accesses += nsb
                        dram.c_accesses.add(nb_all)
                    else:
                        llc.n_hits += nsb
                        if nclear:
                            dram.c_accesses.add(nclear)
                    b_slot_np = np.array(b_slot, dtype=np.int64)
                    b_line_np = np.array(b_line, dtype=np.int64)
                    if len(keys) == 1:
                        kf0 = keys[0]
                        l1c = cinfo[kf0][0]
                        l1c.sbits_flat[b_slot_np] |= cinfo[kf0][3]
                        etf[kf0][b_slot_np] = b_line_np
                        l1c.n_first_access_misses += nb_all
                    else:
                        fmask = np.array(b_isif, dtype=bool)
                        for kf in keys:
                            selm = fmask if kf else ~fmask
                            ssel = b_slot_np[selm]
                            nsel = int(ssel.shape[0])
                            if nsel:
                                l1c = cinfo[kf][0]
                                l1c.sbits_flat[ssel] |= cinfo[kf][3]
                                etf[kf][ssel] = b_line_np[selm]
                                l1c.n_first_access_misses += nsel

                # one position-ordered (last-write-wins) scatter per cache
                for kf in keys:
                    tm = touch[kf][:C]
                    if tm.any():
                        cinfo[kf][0].last_flat[slots_c[kf][:C][tm]] = (
                            times[tm]
                        )

                chunk = [hit_res] * C
                if nb_all:
                    if dram_first:
                        for p in b_pos:
                            chunk[p] = res_dram_first
                    else:
                        sbl = b_sb.tolist()
                        for x in range(nb_all):
                            chunk[b_pos[x]] = (
                                res_llc_first if sbl[x] else res_dram_first
                            )

                lastfill: Dict[Tuple[bool, int], int] = {}
                for eix, ev in enumerate(events):
                    (q, e_if, e_st, code, line, set_, w, lidx, flag,
                     _elat, eres) = ev
                    chunk[q] = eres
                    l1c, cmask, cways, cbit = cinfo[e_if]
                    t = int(times[q])
                    if code == 0:
                        # store hit: dirty + ownership (no other copies —
                        # the walk gated on that); a pending way (-2,
                        # store to an in-window fill) resolves live since
                        # the fill has already installed by this point
                        l1c.n_hits += 1
                        if w < 0:
                            w = l1c._tag_to_way[set_][line]
                        l1c._dirty[set_ * cways + w] = True
                        owners[line] = l1c.name
                        sh = all_sharers.get(line)
                        if sh is None:
                            sh = all_sharers[line] = set()
                        sh.add(l1c.name)
                        continue
                    if code == 1:
                        # store to a resident line, s-bit clear: probe
                        # the LLC, set both s-bits, then upgrade
                        l1c.n_first_access_misses += 1
                        llc._last_used[lidx] = t
                        if flag:
                            if dram_first:
                                llc.n_accesses += 1
                                dram_acc(line)
                            else:
                                llc.n_hits += 1
                        else:
                            llc.n_first_access_misses += 1
                            llc_sbits_mv[lidx] |= lbit
                            dram_acc(line)
                        idx = set_ * cways + w
                        l1c.sbits_mv[idx] |= cbit
                        if tc_enabled:
                            etf[e_if][idx] = line
                        l1c._dirty[idx] = True
                        owners[line] = l1c.name
                        sh = all_sharers.get(line)
                        if sh is None:
                            sh = all_sharers[line] = set()
                        sh.add(l1c.name)
                        continue
                    # codes 2/3: a real L1 miss
                    l1c.n_misses += 1
                    tnow = t & tc_mask
                    if code == 2:
                        # LLC hit (possibly a first access at the LLC)
                        if flag:
                            llc.n_first_access_misses += 1
                            dram_acc(line)
                            llc_sbits_mv[lidx] |= lbit
                        else:
                            llc.n_hits += 1
                        llc._last_used[lidx] = t
                        if e_st:
                            owners[line] = l1c.name
                        sh = all_sharers.get(line)
                        if sh is None:
                            sh = all_sharers[line] = set()
                        sh.add(l1c.name)
                    else:
                        # LLC miss: DRAM fetch + fill (never a victim —
                        # full LLC sets were cut as a scalar boundary)
                        llc.n_misses += 1
                        dram_acc(line)
                        llc.fill(line, sctx, tnow, shared)
                        if e_st:
                            directory.set_owner(line, l1c.name)
                        else:
                            directory.add_sharer(line, l1c.name)
                    # L1 fill (mirrors the inlined _fill_private)
                    tags = l1c._tags
                    t2w = l1c._tag_to_way[set_]
                    base = set_ * cways
                    fw = victim_of.get(eix)
                    if fw is None:
                        fw = 0
                        while tags[base + fw] >= 0:
                            fw += 1
                        idx = base + fw
                        l1c._occ[set_] += 1
                        l1c.valid_mv[idx] = True
                        vtag = -1
                    else:
                        idx = base + fw
                        vtag = tags[idx]
                        vdirty = l1c._dirty[idx]
                        del t2w[vtag]
                        l1c.n_evictions += 1
                        if vdirty:
                            l1c.n_dirty_evictions += 1
                    tags[idx] = line
                    if pend:
                        lastfill[(e_if, idx)] = q
                    l1c._dirty[idx] = e_st
                    l1c._last_used[idx] = tnow
                    l1c._filled_at[idx] = tnow
                    t2w[line] = fw
                    l1c.tc_mv[idx] = tnow
                    l1c.sbits_mv[idx] = cbit
                    if tc_enabled:
                        etf[e_if][idx] = line
                    l1c.n_fills += 1
                    ef = l1c._ever_filled
                    if line not in ef:
                        ef.add(line)
                        l1c.n_cold_misses += 1
                    if e_st:
                        owners[line] = l1c.name
                        sh = all_sharers.get(line)
                        if sh is None:
                            sh = all_sharers[line] = set()
                        sh.add(l1c.name)
                    if vtag >= 0:
                        if vdirty:
                            self._writeback_to_llc(vtag)
                            l1c.n_writebacks += 1
                        sh = all_sharers.get(vtag)
                        if sh is not None:
                            # like the scalar path: leave the emptied
                            # sharer set in place for reuse
                            sh.discard(l1c.name)
                        if owners and owners.get(vtag) == l1c.name:
                            del owners[vtag]

                # pending-hit touches, in order, skipping slots a later
                # in-window fill re-took (the refill stamp stands, as in
                # the scalar order)
                for q, line, f, _counts in pend:
                    if q >= C:
                        break
                    # resolve to the fill preceding this position (a line
                    # can fill more than once when evicted in-window)
                    fs = fill_seq[line]
                    slot = fs[0][1]
                    for qq, ii in fs:
                        if qq < q:
                            slot = ii
                        else:
                            break
                    if lastfill.get((f, slot), -1) < q:
                        cinfo[f][0].last_flat[slot] = times[q]

                extend(chunk)
                t_last = int(times[C - 1])
                if t_last > clock._now:
                    clock._now = t_last
                if nows_np is None:
                    cursor += adv
                i += C

            if prof is not None:
                _t1 = perf_counter_ns()
                prof.apply_ns += _t1 - _tp
                prof.batch_accesses += C
                if C < m:
                    prof.cuts += 1
                _tp = _t1

            if C == m:
                if m == window and window < wmax:
                    window <<= 1
                continue
            if window > wmin and C < (m >> 1):
                window >>= 1
            if hard or C == 0:
                # the cut access is inherently scalar (or defensive
                # progress): run a short scalar burst, then reclassify
                _ib = i
                run_end = i + self._BATCH_SCALAR_RUN
                if run_end > n:
                    run_end = n
                if nows_np is not None:
                    while i < run_end:
                        kind = uniform if kseq is None else kseq[i]
                        append(
                            scalar_access(
                                ctx, int(addrs_np[i]), kind, int(nows_np[i])
                            )
                        )
                        i += 1
                else:
                    while i < run_end:
                        kind = uniform if kseq is None else kseq[i]
                        r = scalar_access(ctx, int(addrs_np[i]), kind, cursor)
                        append(r)
                        cursor += advance + r.latency
                        i += 1
                if prof is not None:
                    prof.fallback_ns += perf_counter_ns() - _tp
                    prof.scalar_accesses += i - _ib
                if tc_enabled:
                    stale = True
        final_now = int(nows_np[n - 1]) if nows_np is not None else cursor
        return BatchResult(results, final_now)

    def _remote_owner_transfer(self, line: int, owner: str) -> Tuple[int, str]:
        """Slow half of _coherence_on_access: a foreign private cache owns
        the line; pull it out if dirty (cache-to-cache transfer)."""
        extra = 0
        level = ""
        owner_cache = self._private_by_name(owner)
        pos = owner_cache.lookup(line)
        if pos is not None:
            set_idx, way = pos
            if owner_cache.is_dirty(set_idx, way):
                extra += self.latency.remote_transfer
                level = "remote"
                owner_cache.downgrade(set_idx, way)
                self._writeback_to_llc(line)
        self.directory.clear_owner(line)
        return extra, level

    def _llc_miss(
        self, l1: FastCache, line: int, ctx: int, sctx: int, is_write: bool, now: int
    ) -> Tuple[int, str]:
        llc = self.llc
        llc.n_misses += 1
        dram_latency = self.dram.access(line)
        victim = llc.fill(
            line,
            sctx,
            now & self._tc_mask,
            LineState.SHARED,
            allowed_ways=self._llc_allowed_ways(ctx),
        )
        wb = 0
        if victim is not None:
            wb = self._handle_llc_eviction(victim)
        if is_write:
            self.directory.set_owner(line, l1.name)
        else:
            self.directory.add_sharer(line, l1.name)
        return llc.hit_latency + dram_latency + wb, "DRAM"

    def _probe_llc(self, line: int, ctx: int, now: int) -> Tuple[int, str]:
        llc = self.llc
        set_idx = line & llc._set_mask
        way = llc._tag_to_way[set_idx].get(line)
        if way is None:
            raise SimulationError(
                f"inclusion violated: line {line:#x} in an L1 but not in LLC"
            )
        idx = set_idx * llc.ways + way
        llc._last_used[idx] = now
        sctx = self._sctx_of[ctx]
        sbit = llc.sbits_mv[idx] & llc._ctx_bit_of[sctx]
        if sbit:
            if not self._dram_first:
                llc.n_hits += 1
                return llc.hit_latency, "LLC"
            # Hidden-latency probe: the one outcome that records no
            # hit/first counter, so the derived access count needs the
            # explicit adjustment bump.
            llc.n_accesses += 1
        else:
            llc.n_first_access_misses += 1
            if llc.event_listener is None and llc.max_sharers == 0:
                llc.sbits_mv[idx] |= llc._ctx_bit_of[sctx]
            else:
                llc.set_sbit(set_idx, way, sctx)
        return llc.hit_latency + self.dram.access(line), "DRAM"

    # ------------------------------------------------------------------
    # Fills, evictions, coherence
    # ------------------------------------------------------------------
    def _fill_private(
        self, l1: FastCache, line: int, ctx: int, is_write: bool, now: int
    ) -> None:
        state = LineState.MODIFIED if is_write else LineState.SHARED
        victim = l1.fill(
            line, ctx, now & self._tc_mask, state, dirty=is_write
        )
        if is_write:
            self._invalidate_other_private(l1, line)
            self.directory.set_owner(line, l1.name)
        if victim is not None:
            self._handle_private_eviction(l1, victim)

    def _prefetch_next_line(
        self, l1: FastCache, line: int, ctx: int, now: int
    ) -> None:
        if l1._tag_to_way[line & l1._set_mask].get(line) is not None:
            return
        l1.n_prefetches += 1
        llc = self.llc
        if llc._tag_to_way[line & llc._set_mask].get(line) is None:
            self.dram.access(line)  # background fetch; latency hidden
            victim = llc.fill(
                line,
                self._sctx_of[ctx],
                now & self._tc_mask,
                LineState.SHARED,
                allowed_ways=self._llc_allowed_ways(ctx),
            )
            if victim is not None:
                self._handle_llc_eviction(victim)
            self.directory.add_sharer(line, l1.name)
        else:
            self.directory.add_sharer(line, l1.name)
        victim = l1.fill(line, ctx, now & self._tc_mask, LineState.SHARED)
        if victim is not None:
            self._handle_private_eviction(l1, victim)

    def _invalidate_other_private(self, requester: FastCache, line: int) -> None:
        for cache in self._private_list:
            if cache is requester:
                continue
            evicted = cache.invalidate(line)
            if evicted is not None:
                if evicted.dirty:
                    self._writeback_to_llc(line)
                self.directory.remove_sharer(line, cache.name)

    def _writeback_to_llc(self, line: int) -> None:
        llc = self.llc
        set_idx = line & llc._set_mask
        way = llc._tag_to_way[set_idx].get(line)
        if way is None:
            raise SimulationError(
                f"writeback of line {line:#x} but LLC does not hold it"
            )
        idx = set_idx * llc.ways + way
        llc._dirty[idx] = True

    def _handle_private_eviction(self, l1: FastCache, victim: EvictedLine) -> None:
        line = victim.tag
        if victim.dirty:
            self._writeback_to_llc(line)
            l1.n_writebacks += 1
        self.directory.remove_sharer(line, l1.name)

    def _handle_llc_eviction(self, victim: EvictedLine) -> int:
        line = victim.tag
        dirty = victim.dirty
        for cache_name in self.directory.drop_line(line):
            cache = self._private_name_map[cache_name]
            evicted = cache.invalidate(line)
            if evicted is not None and evicted.dirty:
                dirty = True
        llc = self.llc
        llc.n_back_invalidations += 1
        if dirty:
            self.dram.writeback(line)
            llc.n_writebacks += 1
            return self.latency.writeback
        return 0
