"""Program wrappers for generator-based simulated code.

A *program* is a zero-argument callable returning a generator that yields
:mod:`repro.cpu.isa` operations and receives each operation's result via
``send``.  :class:`Program` names the callable; :func:`trace_program`
turns a pre-computed operation list (a trace) into a program, which is
how the workload generators feed the CPU.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional

from repro.cpu.isa import Op

#: what the CPU sends back into the generator after each op
ProgramGen = Generator[Op, object, None]


class Program:
    """A named generator factory, restartable for repeated runs."""

    def __init__(self, name: str, factory: Callable[[], ProgramGen]) -> None:
        self.name = name
        self._factory = factory

    def start(self) -> ProgramGen:
        """Instantiate a fresh generator for one execution."""
        return self._factory()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Program({self.name!r})"


def trace_program(name: str, ops: Iterable[Op]) -> Program:
    """A program that replays a fixed operation sequence.

    The ops are materialized once so the program can be restarted (e.g. a
    baseline run and a TimeCache run over the identical trace).
    """
    materialized: List[Op] = list(ops)

    def factory() -> ProgramGen:
        for op in materialized:
            yield op

    return Program(name, factory)


def looping_program(
    name: str,
    make_ops: Callable[[int], Iterable[Op]],
    iterations: Optional[int] = None,
) -> Program:
    """A program generating ops lazily, iteration by iteration.

    ``make_ops(i)`` produces the ops of iteration ``i``; ``iterations``
    bounds the loop (None = run until the scheduler's instruction budget
    stops the task).
    """

    def factory() -> ProgramGen:
        i = 0
        while iterations is None or i < iterations:
            for op in make_ops(i):
                yield op
            i += 1

    return Program(name, factory)
