"""A blocking, TimingSimpleCPU-style CPU layer.

Simulated programs are Python generators that yield :mod:`repro.cpu.isa`
operations and receive each operation's result back (memory results carry
the observed latency, ``Rdtsc`` returns the core-local cycle counter).
:class:`~repro.cpu.cpu.HardwareContext` executes one task at a time on one
hardware context, charging every instruction and memory latency to a
core-local cycle count — exactly the blocking model the paper evaluates
under gem5's TimingSimpleCPU.
"""

from repro.cpu.cpu import HardwareContext, StepEvent, StepOutcome
from repro.cpu.isa import (
    AccessRun,
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Op,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)
from repro.cpu.program import Program, trace_program

__all__ = [
    "AccessRun",
    "Compute",
    "Exit",
    "Fence",
    "Flush",
    "HardwareContext",
    "Ifetch",
    "Load",
    "Op",
    "Program",
    "Rdtsc",
    "SleepOp",
    "StepEvent",
    "StepOutcome",
    "Store",
    "YieldOp",
    "trace_program",
]
