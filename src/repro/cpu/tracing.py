"""Record and replay operation traces.

A recorded trace decouples workload *generation* from *simulation*: the
same operation stream can be replayed against different configurations
(baseline vs TimeCache vs partitioning) or saved to disk for regression
experiments.  The format is line-oriented text — one op per line — so
traces diff cleanly and can be inspected or hand-written.

Format::

    L <vaddr-hex>     load
    S <vaddr-hex>     store
    I <vaddr-hex>     instruction fetch
    R <kinds> <vaddr-hex>...   batched access run (kinds: L/S/I codes)
    F <vaddr-hex>     clflush
    C <count>         compute burst
    T                 rdtsc
    B                 fence (barrier)
    Y                 sched_yield
    Z <cycles>        sleep
    X                 exit

:func:`replay_ops` replays a memory-op stream straight into a
:class:`~repro.core.timecache.TimeCacheSystem` (no CPU/OS layers),
either scalar or coalesced through the batched access path — the two
modes produce identical results by construction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.common.errors import ProgramError
from repro.core.timecache import TimeCacheSystem
from repro.cpu.isa import (
    AccessRun,
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Op,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)
from repro.cpu.program import Program, ProgramGen
from repro.memsys.hierarchy import AccessKind, AccessResult

_KIND_OF_CODE = {
    "L": AccessKind.LOAD,
    "S": AccessKind.STORE,
    "I": AccessKind.IFETCH,
}
_CODE_OF_TYPE = {Load: "L", Store: "S", Ifetch: "I"}


def format_op(op: Op) -> str:
    """One trace line for one operation."""
    if isinstance(op, Load):
        return f"L {op.vaddr:x}"
    if isinstance(op, Store):
        return f"S {op.vaddr:x}"
    if isinstance(op, Ifetch):
        return f"I {op.vaddr:x}"
    if isinstance(op, AccessRun):
        addrs = " ".join(f"{v:x}" for v in op.vaddrs)
        return f"R {op.kinds} {addrs}"
    if isinstance(op, Flush):
        return f"F {op.vaddr:x}"
    if isinstance(op, Compute):
        return f"C {op.instructions}"
    if isinstance(op, Rdtsc):
        return "T"
    if isinstance(op, Fence):
        return "B"
    if isinstance(op, YieldOp):
        return "Y"
    if isinstance(op, SleepOp):
        return f"Z {op.cycles}"
    if isinstance(op, Exit):
        return "X"
    raise ProgramError(f"cannot serialize {op!r}")


def parse_op(line: str) -> Op:
    """Inverse of :func:`format_op`; raises on malformed lines."""
    parts = line.split()
    if not parts:
        raise ProgramError("empty trace line")
    kind = parts[0]
    try:
        if kind == "L":
            return Load(int(parts[1], 16))
        if kind == "S":
            return Store(int(parts[1], 16))
        if kind == "I":
            return Ifetch(int(parts[1], 16))
        if kind == "R":
            return AccessRun(
                [int(p, 16) for p in parts[2:]], kinds=parts[1]
            )
        if kind == "F":
            return Flush(int(parts[1], 16))
        if kind == "C":
            return Compute(int(parts[1]))
        if kind == "T":
            return Rdtsc()
        if kind == "B":
            return Fence()
        if kind == "Y":
            return YieldOp()
        if kind == "Z":
            return SleepOp(int(parts[1]))
        if kind == "X":
            return Exit()
    except (IndexError, ValueError) as exc:
        raise ProgramError(f"malformed trace line {line!r}") from exc
    raise ProgramError(f"unknown trace op {kind!r}")


def record_program(program: Program, max_ops: int = 10_000_000) -> List[Op]:
    """Materialize a program's operation stream.

    Only valid for programs whose control flow does not depend on
    operation results (workload traces do; attackers that branch on
    measured latency do not — recording those raises).
    """
    ops: List[Op] = []
    gen = program.start()
    try:
        op = next(gen)
        while True:
            ops.append(op)
            if len(ops) > max_ops:
                raise ProgramError(
                    f"trace of {program.name} exceeds {max_ops} ops"
                )
            op = gen.send(None)
    except StopIteration:
        return ops


def save_trace(ops: Iterable[Op], path: Union[str, Path]) -> int:
    """Write a trace file; returns the number of ops written."""
    count = 0
    with open(path, "w") as handle:
        for op in ops:
            handle.write(format_op(op) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[Op]:
    """Read a trace file back into operations (comments allowed: ``#``)."""
    ops: List[Op] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            ops.append(parse_op(line))
    return ops


def trace_file_program(name: str, path: Union[str, Path]) -> Program:
    """A restartable program replaying a trace file."""
    ops = load_trace(path)

    def factory() -> ProgramGen:
        for op in ops:
            yield op

    return Program(name, factory)


def iter_trace_ops(lines: Iterable[str]) -> Iterator[Op]:
    """Streaming parser for very large traces (no materialization)."""
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_op(line)


def replay_ops(
    system: TimeCacheSystem,
    ops: Iterable[Op],
    ctx: int = 0,
    translate: Optional[Callable[[int], int]] = None,
    batch: bool = True,
    now: int = 0,
) -> Tuple[List[AccessResult], int]:
    """Replay an operation stream straight into ``system``.

    The CPU and OS layers are bypassed: operations execute back-to-back
    on hardware context ``ctx`` with the blocking time rule (one issue
    cycle plus the full latency of every memory access; compute bursts
    cost their instruction count).  With ``batch=True`` consecutive
    load/store/ifetch operations — and ``AccessRun`` payloads — are
    coalesced through :meth:`TimeCacheSystem.access_batch`;
    ``batch=False`` replays strictly scalar.  Both modes produce
    identical results, timing, and final cache state (the engine
    equivalence fuzz locks this in).  Flushes, computes, fences, and the
    other non-access operations are batch boundaries.  Sleeps advance
    the replay cursor by their full duration (there is no scheduler to
    block on); ``Exit`` stops the replay.

    Returns ``(results, now)``: one :class:`AccessResult` per memory
    access in stream order, and the final cursor value.
    """
    if translate is None:
        translate = lambda v: v  # noqa: E731 - identity mapping
    results: List[AccessResult] = []
    pending_addrs: List[int] = []
    pending_kinds: List[str] = []

    def drain(cursor: int) -> int:
        if not pending_addrs:
            return cursor
        codes = set(pending_kinds)
        kinds = (
            _KIND_OF_CODE[pending_kinds[0]]
            if len(codes) == 1
            else [_KIND_OF_CODE[c] for c in pending_kinds]
        )
        if batch:
            outcome = system.access_batch(
                ctx, pending_addrs, kinds, now=cursor, advance=1
            )
            results.extend(outcome.results)
            cursor = outcome.now
        else:
            kind_seq = (
                [kinds] * len(pending_addrs)
                if isinstance(kinds, AccessKind)
                else kinds
            )
            for addr, kind in zip(pending_addrs, kind_seq):
                result = system.access(ctx, addr, kind, cursor)
                results.append(result)
                cursor += 1 + result.latency
        pending_addrs.clear()
        pending_kinds.clear()
        return cursor

    for op in ops:
        code = _CODE_OF_TYPE.get(type(op))
        if code is not None:
            pending_addrs.append(translate(op.vaddr))
            pending_kinds.append(code)
            continue
        if isinstance(op, AccessRun):
            pending_addrs.extend(translate(v) for v in op.vaddrs)
            pending_kinds.extend(
                op.kinds * len(op.vaddrs) if len(op.kinds) == 1 else op.kinds
            )
            continue
        now = drain(now)
        if isinstance(op, Flush):
            result = system.flush(ctx, translate(op.vaddr), now)
            now += 1 + result.latency
        elif isinstance(op, Compute):
            now += op.instructions
        elif isinstance(op, (Rdtsc, Fence, YieldOp)):
            now += 1
        elif isinstance(op, SleepOp):
            now += 1 + op.cycles
        elif isinstance(op, Exit):
            break
        else:
            raise ProgramError(f"cannot replay {op!r}")
    now = drain(now)
    return results, now
