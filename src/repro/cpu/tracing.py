"""Record and replay operation traces.

A recorded trace decouples workload *generation* from *simulation*: the
same operation stream can be replayed against different configurations
(baseline vs TimeCache vs partitioning) or saved to disk for regression
experiments.  The format is line-oriented text — one op per line — so
traces diff cleanly and can be inspected or hand-written.

Format::

    L <vaddr-hex>     load
    S <vaddr-hex>     store
    I <vaddr-hex>     instruction fetch
    F <vaddr-hex>     clflush
    C <count>         compute burst
    T                 rdtsc
    B                 fence (barrier)
    Y                 sched_yield
    Z <cycles>        sleep
    X                 exit
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.common.errors import ProgramError
from repro.cpu.isa import (
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Op,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)
from repro.cpu.program import Program, ProgramGen


def format_op(op: Op) -> str:
    """One trace line for one operation."""
    if isinstance(op, Load):
        return f"L {op.vaddr:x}"
    if isinstance(op, Store):
        return f"S {op.vaddr:x}"
    if isinstance(op, Ifetch):
        return f"I {op.vaddr:x}"
    if isinstance(op, Flush):
        return f"F {op.vaddr:x}"
    if isinstance(op, Compute):
        return f"C {op.instructions}"
    if isinstance(op, Rdtsc):
        return "T"
    if isinstance(op, Fence):
        return "B"
    if isinstance(op, YieldOp):
        return "Y"
    if isinstance(op, SleepOp):
        return f"Z {op.cycles}"
    if isinstance(op, Exit):
        return "X"
    raise ProgramError(f"cannot serialize {op!r}")


def parse_op(line: str) -> Op:
    """Inverse of :func:`format_op`; raises on malformed lines."""
    parts = line.split()
    if not parts:
        raise ProgramError("empty trace line")
    kind = parts[0]
    try:
        if kind == "L":
            return Load(int(parts[1], 16))
        if kind == "S":
            return Store(int(parts[1], 16))
        if kind == "I":
            return Ifetch(int(parts[1], 16))
        if kind == "F":
            return Flush(int(parts[1], 16))
        if kind == "C":
            return Compute(int(parts[1]))
        if kind == "T":
            return Rdtsc()
        if kind == "B":
            return Fence()
        if kind == "Y":
            return YieldOp()
        if kind == "Z":
            return SleepOp(int(parts[1]))
        if kind == "X":
            return Exit()
    except (IndexError, ValueError) as exc:
        raise ProgramError(f"malformed trace line {line!r}") from exc
    raise ProgramError(f"unknown trace op {kind!r}")


def record_program(program: Program, max_ops: int = 10_000_000) -> List[Op]:
    """Materialize a program's operation stream.

    Only valid for programs whose control flow does not depend on
    operation results (workload traces do; attackers that branch on
    measured latency do not — recording those raises).
    """
    ops: List[Op] = []
    gen = program.start()
    try:
        op = next(gen)
        while True:
            ops.append(op)
            if len(ops) > max_ops:
                raise ProgramError(
                    f"trace of {program.name} exceeds {max_ops} ops"
                )
            op = gen.send(None)
    except StopIteration:
        return ops


def save_trace(ops: Iterable[Op], path: Union[str, Path]) -> int:
    """Write a trace file; returns the number of ops written."""
    count = 0
    with open(path, "w") as handle:
        for op in ops:
            handle.write(format_op(op) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[Op]:
    """Read a trace file back into operations (comments allowed: ``#``)."""
    ops: List[Op] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            ops.append(parse_op(line))
    return ops


def trace_file_program(name: str, path: Union[str, Path]) -> Program:
    """A restartable program replaying a trace file."""
    ops = load_trace(path)

    def factory() -> ProgramGen:
        for op in ops:
            yield op

    return Program(name, factory)


def iter_trace_ops(lines: Iterable[str]) -> Iterator[Op]:
    """Streaming parser for very large traces (no materialization)."""
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_op(line)
