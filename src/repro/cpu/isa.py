"""Operations a simulated program can yield to the CPU.

The "ISA" is deliberately small: the attacks and workloads in the paper
need memory accesses (loads, stores, instruction fetches), ``clflush``,
timing reads (``rdtsc``), fences, fixed-cost computation, and the
scheduling calls (yield/sleep/exit) the microbenchmark attack uses.

Every operation is a tiny ``__slots__`` object; the CPU dispatches on
type.  Memory operations take *virtual* addresses — the current task's
address space translates them, which is how two processes mapping the
same shared library reach the same physical lines.
"""

from __future__ import annotations


class Op:
    """Base class for all operations (useful for isinstance checks)."""

    __slots__ = ()


class Load(Op):
    """Read one byte-addressed location (data cache path)."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Load({self.vaddr:#x})"


class Store(Op):
    """Write one location (write-allocate, write-back)."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Store({self.vaddr:#x})"


class Ifetch(Op):
    """Fetch instructions from a code address (instruction cache path).

    Programs yield these explicitly for the code footprints that matter —
    e.g. the RSA victim's square/multiply/reduce functions."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Ifetch({self.vaddr:#x})"


#: kind codes an :class:`AccessRun` accepts, matching the trace format
ACCESS_RUN_CODES = frozenset("LSI")


class AccessRun(Op):
    """A run of back-to-back memory accesses executed as one batch.

    ``kinds`` is a string of per-access codes — ``L`` (load), ``S``
    (store), ``I`` (instruction fetch) — either a single code applied to
    every address or one code per address.  The CPU executes the whole
    run atomically with the same per-operation timing as the equivalent
    ``Load``/``Store``/``Ifetch`` sequence (on the fast engine through
    the vectorized batched path), and the program receives the list of
    per-access results instead of a single result.
    """

    __slots__ = ("vaddrs", "kinds")

    def __init__(self, vaddrs, kinds: str = "L") -> None:
        self.vaddrs = [int(v) for v in vaddrs]
        if not self.vaddrs:
            raise ValueError("AccessRun needs at least one address")
        kinds = str(kinds)
        if len(kinds) not in (1, len(self.vaddrs)):
            raise ValueError(
                f"AccessRun kinds has {len(kinds)} codes for "
                f"{len(self.vaddrs)} addresses"
            )
        bad = set(kinds) - ACCESS_RUN_CODES
        if bad:
            raise ValueError(f"AccessRun kind codes must be L/S/I, got {bad}")
        self.kinds = kinds

    def __repr__(self) -> str:  # pragma: no cover
        return f"AccessRun({len(self.vaddrs)} accesses, kinds={self.kinds!r})"


class Flush(Op):
    """clflush: evict the line from every cache level."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int) -> None:
        self.vaddr = vaddr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Flush({self.vaddr:#x})"


class Compute(Op):
    """``instructions`` one-cycle ALU instructions with no memory traffic."""

    __slots__ = ("instructions",)

    def __init__(self, instructions: int = 1) -> None:
        if instructions <= 0:
            raise ValueError(f"Compute needs >= 1 instruction, got {instructions}")
        self.instructions = instructions

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.instructions})"


class Rdtsc(Op):
    """Read the core-local cycle counter; the result is the counter value.

    The attacker brackets a probe load between two of these, like the
    fenced ``rdtsc`` pairs in the real flush+reload attack."""

    __slots__ = ()


class Fence(Op):
    """Ordering fence.  The blocking CPU is already fully ordered, so this
    only costs a cycle — it exists so attack code reads like the real
    thing (timed loads must be fenced against speculation)."""

    __slots__ = ()


class YieldOp(Op):
    """sched_yield: give up the rest of the quantum."""

    __slots__ = ()


class SleepOp(Op):
    """Block for at least ``cycles`` core-local cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles <= 0:
            raise ValueError(f"SleepOp needs positive cycles, got {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover
        return f"SleepOp({self.cycles})"


class Exit(Op):
    """Terminate the task."""

    __slots__ = ()
