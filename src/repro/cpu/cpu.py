"""The hardware-context executor (blocking, TimingSimpleCPU-style).

One :class:`HardwareContext` models one logical CPU (a core thread).  It
runs at most one task's generator at a time, advancing a core-local cycle
count by one cycle per instruction plus the full latency of every memory
operation — the blocking model the paper's gem5 evaluation uses.

Scheduling decisions (who runs next, quantum expiry, context-switch cost)
belong to the OS layer; the executor reports each step's outcome so the
kernel can react.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import ProgramError
from repro.common.stats import StatGroup
from repro.core.timecache import TimeCacheSystem
from repro.cpu.isa import (
    AccessRun,
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Op,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)
from repro.cpu.program import ProgramGen
from repro.memsys.hierarchy import AccessKind

#: AccessRun kind code -> access kind (and the stat counter it bumps)
_KIND_OF_CODE = {
    "L": (AccessKind.LOAD, "loads"),
    "S": (AccessKind.STORE, "stores"),
    "I": (AccessKind.IFETCH, "ifetches"),
}


class StepEvent(enum.Enum):
    """What happened when the context executed one operation."""

    RUNNING = "running"
    YIELDED = "yielded"
    SLEEPING = "sleeping"
    EXITED = "exited"


@dataclass(frozen=True)
class StepOutcome:
    """Result of one :meth:`HardwareContext.step` call."""

    event: StepEvent
    #: core-local wake time for SLEEPING, else None
    wake_at: Optional[int] = None


#: translates a task virtual address to a physical address
Translator = Callable[[int], int]


class HardwareContext:
    """One logical CPU executing one task generator at a time."""

    def __init__(self, ctx_id: int, system: TimeCacheSystem) -> None:
        self.ctx_id = ctx_id
        self.system = system
        #: core-local cycle counter (monotone for the context's lifetime)
        self.local_time = 0
        self.stats = StatGroup(f"ctx{ctx_id}")
        self._gen: Optional[ProgramGen] = None
        self._translate: Optional[Translator] = None
        self._pending_result: object = None
        self._started = False

    # ------------------------------------------------------------------
    def install(self, gen: ProgramGen, translate: Translator) -> None:
        """Bind a task's generator and address translation to this context."""
        self._gen = gen
        self._translate = translate
        self._pending_result = None
        self._started = False

    def uninstall(self) -> None:
        self._gen = None
        self._translate = None
        self._pending_result = None
        self._started = False

    @property
    def busy(self) -> bool:
        return self._gen is not None

    @property
    def instructions(self) -> int:
        return self.stats.get("instructions")

    # ------------------------------------------------------------------
    def step(self) -> StepOutcome:
        """Execute one operation of the installed task."""
        if self._gen is None or self._translate is None:
            raise ProgramError(f"ctx{self.ctx_id}: no task installed")
        try:
            if not self._started:
                op = next(self._gen)
                self._started = True
            else:
                op = self._gen.send(self._pending_result)
        except StopIteration:
            return StepOutcome(StepEvent.EXITED)
        return self._execute(op)

    def _execute(self, op: Op) -> StepOutcome:
        stats = self.stats
        if isinstance(op, Load):
            result = self.system.access(
                self.ctx_id, self._translate(op.vaddr), AccessKind.LOAD, self.local_time
            )
            self.local_time += 1 + result.latency
            stats.counter("instructions").add()
            stats.counter("loads").add()
            self._pending_result = result
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Store):
            result = self.system.access(
                self.ctx_id, self._translate(op.vaddr), AccessKind.STORE, self.local_time
            )
            self.local_time += 1 + result.latency
            stats.counter("instructions").add()
            stats.counter("stores").add()
            self._pending_result = result
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Ifetch):
            result = self.system.access(
                self.ctx_id,
                self._translate(op.vaddr),
                AccessKind.IFETCH,
                self.local_time,
            )
            self.local_time += 1 + result.latency
            stats.counter("instructions").add()
            stats.counter("ifetches").add()
            self._pending_result = result
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Flush):
            result = self.system.flush(
                self.ctx_id, self._translate(op.vaddr), self.local_time
            )
            self.local_time += 1 + result.latency
            stats.counter("instructions").add()
            stats.counter("flushes").add()
            self._pending_result = result
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, AccessRun):
            translate = self._translate
            paddrs = [translate(v) for v in op.vaddrs]
            n = len(paddrs)
            if len(op.kinds) == 1:
                kind, counter = _KIND_OF_CODE[op.kinds]
                batch = self.system.access_batch(
                    self.ctx_id, paddrs, kind, now=self.local_time, advance=1
                )
                stats.counter(counter).add(n)
            else:
                kinds = [_KIND_OF_CODE[c][0] for c in op.kinds]
                batch = self.system.access_batch(
                    self.ctx_id, paddrs, kinds, now=self.local_time, advance=1
                )
                for code, counter in (("L", "loads"), ("S", "stores"),
                                      ("I", "ifetches")):
                    count = op.kinds.count(code)
                    if count:
                        stats.counter(counter).add(count)
            # batch.now is exactly local_time + sum(1 + latency) over the
            # run — the same clock a Load/Store/Ifetch sequence reaches.
            self.local_time = batch.now
            stats.counter("instructions").add(n)
            self._pending_result = batch.results
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Compute):
            self.local_time += op.instructions
            stats.counter("instructions").add(op.instructions)
            self._pending_result = None
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Rdtsc):
            self.local_time += 1
            stats.counter("instructions").add()
            self._pending_result = self.local_time
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, Fence):
            self.local_time += 1
            stats.counter("instructions").add()
            self._pending_result = None
            return StepOutcome(StepEvent.RUNNING)
        if isinstance(op, YieldOp):
            self.local_time += 1
            stats.counter("instructions").add()
            self._pending_result = None
            return StepOutcome(StepEvent.YIELDED)
        if isinstance(op, SleepOp):
            self.local_time += 1
            stats.counter("instructions").add()
            self._pending_result = None
            return StepOutcome(StepEvent.SLEEPING, wake_at=self.local_time + op.cycles)
        if isinstance(op, Exit):
            stats.counter("instructions").add()
            self._pending_result = None
            return StepOutcome(StepEvent.EXITED)
        raise ProgramError(f"unknown operation {op!r}")
