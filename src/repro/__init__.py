"""TimeCache (ISCA 2021) reproduction.

A behavioral, cycle-accounting reproduction of *"TimeCache: Using Time to
Eliminate Cache Side Channels when Sharing Software"* (Ojha & Dwarkadas).

Layers, bottom up:

* :mod:`repro.common` -- clocks, configuration, RNG, statistics.
* :mod:`repro.memsys` -- the memory-system substrate (multi-level caches,
  DRAM, MESI-lite coherence) standing in for gem5.
* :mod:`repro.core` -- the contribution: s-bits, Tc/Ts timestamps, the
  bit-serial timestamp-parallel comparator, and context-switch handling.
* :mod:`repro.cpu` -- a blocking (TimingSimpleCPU-style) CPU executing
  generator-based programs (multi-core stepping lives in the kernel).
* :mod:`repro.os` -- processes/threads, virtual memory with shared
  mappings, and a round-robin scheduler whose switches drive the s-bit
  save/restore.
* :mod:`repro.attacks` -- flush+reload, evict+reload, prime+probe,
  flush+flush, evict+time, LRU, coherence attacks, and the GnuPG-style
  RSA key-extraction attack.
* :mod:`repro.workloads` -- synthetic SPEC2006/PARSEC-like benchmark
  profiles driving the overhead experiments.
* :mod:`repro.analysis` -- the experiment harness that regenerates every
  table and figure of the paper's evaluation.
"""

from repro.common import SimConfig, scaled_experiment_config
from repro.core import TimeCacheSystem
from repro.memsys import AccessKind, AccessResult

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "AccessResult",
    "SimConfig",
    "TimeCacheSystem",
    "scaled_experiment_config",
    "__version__",
]
