"""Pluggable cache-side-channel defenses (docs/internals.md §17).

TimeCache, the undefended control, FASE-style selective flushing, and
CACHEBAR-style copy-on-access, all behind one :class:`Defense` protocol
and one registry that the tournament, the compare-defenses matrix, and
:class:`~repro.core.timecache.TimeCacheSystem` share.
"""

from repro.defenses.base import Defense, merge_switch_costs
from repro.defenses.builtin import (
    BaselineControl,
    CopyOnAccessDefense,
    SelectiveFlushDefense,
    TimeCacheDefense,
)
from repro.defenses.registry import (
    defense_names,
    get_defense,
    is_control_defense,
    register_defense,
    unregister_defense,
)

__all__ = [
    "BaselineControl",
    "CopyOnAccessDefense",
    "Defense",
    "SelectiveFlushDefense",
    "TimeCacheDefense",
    "defense_names",
    "get_defense",
    "is_control_defense",
    "merge_switch_costs",
    "register_defense",
    "unregister_defense",
]
