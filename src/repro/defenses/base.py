"""The :class:`Defense` protocol: software cache-side-channel mitigations
as pluggable policies over one simulated machine.

A defense is two things:

* a **config transform** (:meth:`Defense.configure`) that turns a neutral
  :class:`~repro.common.config.SimConfig` into the defended machine —
  flipping the TimeCache s-bit machinery on or off, and stamping
  ``config.defense`` so the system knows which plugin to attach; and
* an optional set of **runtime hooks** (:meth:`Defense.attach`,
  :meth:`Defense.on_context_switch`) installed by
  :class:`~repro.core.timecache.TimeCacheSystem` at construction:
  per-access observation (hierarchy pre/post listeners), an address
  remap at the system facade, and a context-switch cost contribution
  merged into the :class:`~repro.core.context.SwitchCost` the scheduler
  charges.

TimeCache itself is one registered plugin whose hooks are all no-ops —
the s-bit/Tc machinery stays where it always lived (``repro.memsys``,
``repro.core.context``), keyed off ``config.timecache.enabled``, so the
defended system is *bit-identical* to what it was before the protocol
existed.  The protocol earns its keep with the siblings: FASE-style
selective flushing and CACHEBAR-style copy-on-access need only the hooks.

Engine capability
-----------------

The fast engine's batched miss-resolution kernels (docs/internals.md §15)
cannot call back into Python per access.  Each defense therefore declares
``fast_engine``:

* ``"kernel"`` — no per-access hooks; the in-kernel batched path stays
  eligible (TimeCache, the baseline control, copy-on-access: its remap
  happens at the facade, before the hierarchy is entered);
* ``"scalar"`` — the defense attaches per-access listeners, which force
  the fast engine onto its scalar reference loop (selective flushing);
  correct, just slower — the capability declaration is what makes the
  degradation an announced contract instead of a silent one;
* ``"none"`` — the combination is unsupported:
  :meth:`Defense.check_engine` raises a typed
  :class:`~repro.common.errors.ConfigError` naming the fallback, the
  same way the fast engine rejects tree-plru replacement.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Optional

from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.core.context import SwitchCost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.timecache import TimeCacheSystem

#: the declared fast-engine capability levels, strongest first
FAST_ENGINE_MODES = ("kernel", "scalar", "none")


class Defense:
    """Base class / protocol for one registered defense.

    Subclasses set the class attributes and override whichever hooks
    they need; every base hook is a no-op so a pure config-transform
    defense (TimeCache, the baseline control) costs nothing at runtime.
    """

    #: registry key, and the value carried in ``SimConfig.defense``
    name: str = ""
    #: one-line description for docs and the matrix rendering
    summary: str = ""
    #: True for the undefended control arm: the tournament gate holds
    #: control cells to the *sanity* direction (the attack must keep
    #: leaking) instead of the defense-regression direction
    is_control: bool = False
    #: fast-engine capability: "kernel" | "scalar" | "none" (see module
    #: docstring)
    fast_engine: str = "kernel"

    # ------------------------------------------------------------------
    # config transform
    # ------------------------------------------------------------------
    def configure(self, config: SimConfig) -> SimConfig:
        """Return ``config`` reshaped into this defense's machine.

        The default stamps ``config.defense`` only; subclasses compose
        with :meth:`SimConfig.with_timecache` / :meth:`SimConfig.baseline`
        as needed.  Must be pure (frozen-dataclass ``replace``).
        """
        return dataclasses.replace(config, defense=self.name)

    # ------------------------------------------------------------------
    # engine capability (satellite: typed, never silent)
    # ------------------------------------------------------------------
    def check_engine(self, config: SimConfig) -> None:
        """Raise :class:`ConfigError` when this defense cannot run on the
        configured engine, naming the fallback — mirroring the fast
        engine's tree-plru rejection."""
        if config.hierarchy.engine == "fast" and self.fast_engine == "none":
            raise ConfigError(
                f"defense {self.name!r} does not support engine='fast'; "
                f"fall back to engine='object' (the reference model)"
            )

    # ------------------------------------------------------------------
    # runtime hooks
    # ------------------------------------------------------------------
    def attach(self, system: "TimeCacheSystem") -> Any:
        """Install runtime hooks on a freshly built system.

        Returns the defense's per-system mutable state (stored by the
        system as ``defense_state``), or ``None`` when the defense is a
        pure config transform.  Registry entries are singletons — never
        keep per-system state on ``self``.
        """
        return None

    def on_context_switch(
        self,
        system: "TimeCacheSystem",
        outgoing_task: Optional[int],
        incoming_task: int,
        ctx: int,
        now: int,
    ) -> Optional[SwitchCost]:
        """Per-switch work; an extra :class:`SwitchCost` to merge into
        what the scheduler charges, or ``None`` for no contribution."""
        return None


def merge_switch_costs(base: SwitchCost, extra: SwitchCost) -> SwitchCost:
    """The defense's switch contribution added onto the engine's cost."""
    return SwitchCost(
        dma_cycles=base.dma_cycles + extra.dma_cycles,
        comparator_cycles=base.comparator_cycles + extra.comparator_cycles,
        rollover_reset=base.rollover_reset or extra.rollover_reset,
    )
