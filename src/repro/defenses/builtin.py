"""The shipped defense zoo: TimeCache, the undefended control, FASE-style
selective flushing, and CACHEBAR-style copy-on-access.

Cost models (docs/internals.md §17):

* **timecache** — per-line s-bits + truncated Tc timestamps; cost is the
  first-access latency discipline plus the s-bit DMA/comparator cycles
  at every switch.  All of that machinery predates the protocol and is
  keyed off ``config.timecache``; this plugin is a pure config transform
  so the defended system stays bit-identical to the pre-protocol one.
* **baseline** — the control arm: the unmodified cache.  ``is_control``
  puts its tournament cells under the gate's sanity direction.
* **selective_flush** — FASE: at each reschedule, flush only the lines
  the switching-out context actually touched since it was switched in.
  Cost is ``flush_cached`` cycles per flushed line, charged through the
  scheduler like the s-bit DMA; per-access tracking forces the fast
  engine's scalar loop (``fast_engine="scalar"``).
* **copy_on_access** — CACHEBAR: every security domain gets its own copy
  of any shared line, so reuse channels (flush+reload, flush+flush,
  evict+reload) lose their shared-line signal.  Modeled as a tenant tag
  folded into the address *above* the set-index bits at the system
  facade: copies of one line still collide in the same set (conflict
  channels like prime+probe honestly survive, as they do for the real
  defense), while tags differ so no tenant can hit on, or flush,
  another's copy.  The cost is emergent — extra cold misses and cache
  pressure from the duplicated footprint — so no explicit switch cost
  is charged; the remap is pure arithmetic before the hierarchy is
  entered, which keeps the fast engine's batched kernels eligible.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.common.config import SimConfig
from repro.core.context import SwitchCost
from repro.defenses.base import Defense

#: bit position of the copy-on-access tenant tag: far above any address
#: the workloads or attacks generate, so remapped addresses never
#: collide across tenants yet keep their set-index and line-offset bits
TENANT_SHIFT = 44


class TimeCacheDefense(Defense):
    """The paper's defense, as one registered plugin (pure transform)."""

    name = "timecache"
    summary = "per-context s-bits + Tc timestamps (the paper's defense)"
    fast_engine = "kernel"

    def configure(self, config: SimConfig) -> SimConfig:
        return super().configure(config.with_timecache(enabled=True))


class BaselineControl(Defense):
    """The undefended machine — the tournament's control arm."""

    name = "baseline"
    summary = "unmodified cache (control arm; attacks must leak here)"
    is_control = True
    fast_engine = "kernel"

    def configure(self, config: SimConfig) -> SimConfig:
        return super().configure(config.baseline())


class SelectiveFlushDefense(Defense):
    """FASE-style selective flushing at reschedule.

    Per-system state: one set of touched line addresses per hardware
    context, filled by a hierarchy post-access listener and drained
    (flushed) when that context switches tasks.  Flushing goes through
    :meth:`MemoryHierarchy._flush_line_everywhere`, the same path
    clflush and the partitioning baseline use, so dirty writebacks and
    directory bookkeeping are handled identically on both engines.
    """

    name = "selective_flush"
    summary = "FASE: flush the switching context's touched lines"
    fast_engine = "scalar"

    def configure(self, config: SimConfig) -> SimConfig:
        return super().configure(config.baseline())

    def attach(self, system: "Any") -> Dict[int, Set[int]]:
        touched: Dict[int, Set[int]] = {}

        def record(ctx: int, line: int, kind, now, result) -> None:
            bucket = touched.get(ctx)
            if bucket is None:
                bucket = touched[ctx] = set()
            bucket.add(line)

        system.hierarchy.post_access_listeners.append(record)
        return touched

    def on_context_switch(
        self,
        system: "Any",
        outgoing_task: Optional[int],
        incoming_task: int,
        ctx: int,
        now: int,
    ) -> Optional[SwitchCost]:
        touched = system.defense_state
        lines = touched.pop(ctx, None)
        if not lines:
            return None
        hierarchy = system.hierarchy
        llc = hierarchy.llc
        flushed = 0
        # Sorted order keeps the flush sequence (and hence dirty
        # writebacks and event streams) deterministic across engines.
        for line in sorted(lines):
            if llc.resident(line):  # inclusive: LLC residency covers L1s
                hierarchy._flush_line_everywhere(line)
                flushed += 1
        if not flushed:
            return None
        hierarchy.stats.counter("selective_flushes").add(flushed)
        per_line = hierarchy.latency.flush_cached
        return SwitchCost(
            dma_cycles=flushed * per_line,
            comparator_cycles=0,
            rollover_reset=False,
        )


class CopyOnAccessDefense(Defense):
    """CACHEBAR-style per-tenant line copies via facade address remap.

    Per-system state: the tenant (task id) currently resident on each
    hardware context, updated at every context switch.  Before any
    switch has named a task, the hardware context id itself is the
    tenant — the same convention the differential fuzz uses for task
    identity, so directly-driven systems stay deterministic.
    """

    name = "copy_on_access"
    summary = "CACHEBAR: per-tenant line copies break shared-line reuse"
    fast_engine = "kernel"

    def configure(self, config: SimConfig) -> SimConfig:
        return super().configure(config.baseline())

    def attach(self, system: "Any") -> Dict[int, int]:
        tenants: Dict[int, int] = {}

        def offset(ctx: int) -> int:
            # +1 keeps tenant 0's copies disjoint from raw addresses
            return (tenants.get(ctx, ctx) + 1) << TENANT_SHIFT

        system._addr_offset = offset
        return tenants

    def on_context_switch(
        self,
        system: "Any",
        outgoing_task: Optional[int],
        incoming_task: int,
        ctx: int,
        now: int,
    ) -> Optional[SwitchCost]:
        system.defense_state[ctx] = incoming_task
        return None
