"""The defense registry: name → :class:`~repro.defenses.base.Defense`.

Registration order is presentation order — the tournament's defense
axis, the compare-defenses matrix rows, and the committed security
baseline all iterate :func:`defense_names`, so a newly registered
defense slots into every artifact without touching the harnesses
(``--update-baseline`` grows the new cells; the gate ignores cells
present on only one side, so growth never retroactively fails it).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.defenses.base import FAST_ENGINE_MODES, Defense
from repro.defenses.builtin import (
    BaselineControl,
    CopyOnAccessDefense,
    SelectiveFlushDefense,
    TimeCacheDefense,
)

_REGISTRY: Dict[str, Defense] = {}


def register_defense(defense: Defense, replace: bool = False) -> Defense:
    """Add a defense to the registry (typed errors, never silent)."""
    if not defense.name:
        raise ConfigError("a defense must carry a non-empty name")
    if defense.fast_engine not in FAST_ENGINE_MODES:
        raise ConfigError(
            f"defense {defense.name!r}: fast_engine must be one of "
            f"{FAST_ENGINE_MODES}, got {defense.fast_engine!r}"
        )
    if defense.name in _REGISTRY and not replace:
        raise ConfigError(f"defense {defense.name!r} is already registered")
    _REGISTRY[defense.name] = defense
    return defense


def unregister_defense(name: str) -> None:
    """Remove a defense (tests registering throwaways clean up with this)."""
    _REGISTRY.pop(name, None)


def get_defense(name: str) -> Defense:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown defense {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def defense_names() -> List[str]:
    """Registered defense names, in registration (presentation) order."""
    return list(_REGISTRY)


def is_control_defense(name: str) -> bool:
    """True when ``name`` is registered as a control (undefended) arm."""
    defense = _REGISTRY.get(name)
    return bool(defense is not None and defense.is_control)


# The shipped zoo.  TimeCache and the control arm first: they anchor the
# pre-protocol tournament matrix, and their cells must stay bit-identical.
register_defense(TimeCacheDefense())
register_defense(BaselineControl())
register_defense(SelectiveFlushDefense())
register_defense(CopyOnAccessDefense())
