"""Structured observability for the simulator (events, sinks, manifests).

The paper's security argument lives in timing *dynamics* — first-access
misses, s-bit flash-clears at context switches, attack-phase latencies —
but aggregate end-of-run counters flatten all of that away.  This package
adds a telemetry layer that can watch both engines and the sweep fleet
without perturbing the hot paths it observes:

* :mod:`~repro.obs.events`   — the typed simulator-time event record and
  its JSONL wire format;
* :mod:`~repro.obs.sinks`    — where events go: a JSONL file, a bounded
  in-memory ring buffer, or several sinks at once;
* :mod:`~repro.obs.tracer`   — the emission guard and the hook wiring
  onto a :class:`~repro.core.timecache.TimeCacheSystem` or a
  :class:`~repro.os.kernel.Kernel`.  A disabled tracer attaches nothing,
  so the hot paths keep their pre-existing ``listener is None`` branch
  and tracing costs literally zero when off;
* :mod:`~repro.obs.sampler`  — periodic :class:`StatGroup` snapshots as
  a timeseries (windowed MPKA, first-access-miss rate over time);
* :mod:`~repro.obs.perfetto` — Chrome trace-event / Perfetto export so
  attack timelines render visually in ``chrome://tracing``;
* :mod:`~repro.obs.manifest` — per-run manifests: config hash, seed,
  engine, git SHA, machine metadata, and an artifact index;
* :mod:`~repro.obs.console`  — the CLI's quiet-aware output helper.

See docs/internals.md §11 for the event schema and the safety rules for
enabling tracing during benchmarks.
"""

from repro.obs.console import Console
from repro.obs.counters import (
    CounterRegistry,
    CounterSlot,
    merge_counts,
    registry_from_snapshot,
    to_openmetrics,
)
from repro.obs.events import (
    EVENT_KINDS,
    OBS_SCHEMA,
    TraceEvent,
    parse_event,
    read_events,
    read_events_tolerant,
)
from repro.obs.manifest import RunManifest, config_fingerprint, load_manifest
from repro.obs.perfetto import to_chrome_trace, write_chrome_trace
from repro.obs.sampler import MetricsSample, MetricsSampler
from repro.obs.sinks import JsonlSink, RingBufferSink, TeeSink
from repro.obs.spans import (
    ObsSession,
    PhaseAccumulator,
    SpanProfiler,
    current_session,
    install_session,
    session_scope,
)
from repro.obs.tracer import Tracer

__all__ = [
    "Console",
    "CounterRegistry",
    "CounterSlot",
    "EVENT_KINDS",
    "JsonlSink",
    "MetricsSample",
    "MetricsSampler",
    "OBS_SCHEMA",
    "ObsSession",
    "PhaseAccumulator",
    "RingBufferSink",
    "RunManifest",
    "SpanProfiler",
    "TeeSink",
    "TraceEvent",
    "Tracer",
    "config_fingerprint",
    "current_session",
    "install_session",
    "load_manifest",
    "merge_counts",
    "parse_event",
    "read_events",
    "read_events_tolerant",
    "registry_from_snapshot",
    "session_scope",
    "to_chrome_trace",
    "to_openmetrics",
    "write_chrome_trace",
]
