"""Wall-clock span instrumentation: where do the *host* cycles go.

The PR 4 tracer records *simulated* time — right for security analysis,
useless for answering "is the planner still the bottleneck".  This
module adds the host-side view:

* :class:`PhaseAccumulator` — plain-int nanosecond cells for the four
  ``_access_batch_kernel`` phases (classify / plan / rehearse / apply)
  plus the scalar-fallback bucket.  The kernel hoists one attribute
  reference per batch and adds two subtractions per phase boundary;
  when no profiler is installed the hot path keeps its pre-existing
  ``is None`` branch and pays nothing (the <5% disabled-overhead gate
  from PR 4 covers this, see ``bench_hierarchy_access_traced``).
* :class:`SpanProfiler` — nesting wall-clock spans (``with
  profiler.span("sweep.job")``) that carry counter deltas from an
  attached :class:`~repro.obs.counters.CounterRegistry`, and export as
  Perfetto complete slices or folded stacks (``repro obs flame``).
* :class:`ObsSession` — the per-process bundle (registry + profiler +
  kernel phases) with a module-global install point, so worker
  processes and ``TimeCacheSystem`` construction can find the active
  session without threading it through every constructor.

Times are ``time.perf_counter_ns`` nanoseconds end to end; exports
convert to trace-format microseconds at the edge.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.obs.counters import CounterRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.timecache import TimeCacheSystem

__all__ = [
    "KERNEL_PHASES",
    "ObsSession",
    "PhaseAccumulator",
    "Span",
    "SpanProfiler",
    "current_session",
    "install_session",
    "folded_to_lines",
]

#: the kernel pipeline stages, in pipeline order (docs/internals.md §15),
#: plus the scalar-fallback bucket that absorbs everything the kernel
#: hands back to the reference loop.
KERNEL_PHASES = ("classify", "plan", "rehearse", "apply", "fallback")


class PhaseAccumulator:
    """Nanosecond + event tallies for the batched-access kernel.

    All slots are plain ints so the kernel's ``prof.plan_ns += dt``
    bumps never allocate.  ``fallback_ns`` also absorbs the object
    engine's scalar :meth:`MemoryHierarchy.access_batch` loop — on that
    engine *everything* is fallback, which is itself the measurement.
    """

    __slots__ = (
        "classify_ns",
        "plan_ns",
        "rehearse_ns",
        "apply_ns",
        "fallback_ns",
        "windows",
        "events",
        "cuts",
        "replans",
        "scalar_accesses",
        "batch_accesses",
    )

    def __init__(self) -> None:
        self.classify_ns = 0
        self.plan_ns = 0
        self.rehearse_ns = 0
        self.apply_ns = 0
        self.fallback_ns = 0
        self.windows = 0
        self.events = 0
        self.cuts = 0
        self.replans = 0
        self.scalar_accesses = 0
        self.batch_accesses = 0

    def phase_ns(self) -> Dict[str, int]:
        return {
            "classify": self.classify_ns,
            "plan": self.plan_ns,
            "rehearse": self.rehearse_ns,
            "apply": self.apply_ns,
            "fallback": self.fallback_ns,
        }

    def total_ns(self) -> int:
        return (
            self.classify_ns
            + self.plan_ns
            + self.rehearse_ns
            + self.apply_ns
            + self.fallback_ns
        )

    def counts(self) -> Dict[str, int]:
        return {
            "windows": self.windows,
            "events": self.events,
            "cuts": self.cuts,
            "replans": self.replans,
            "scalar_accesses": self.scalar_accesses,
            "batch_accesses": self.batch_accesses,
        }

    def to_payload(self) -> Dict[str, int]:
        """Flat JSON-safe dict; the shard merge sums these key-wise."""
        out = {f"{k}_ns": v for k, v in self.phase_ns().items()}
        out.update(self.counts())
        return out

    def load(self, payload: Dict[str, int]) -> "PhaseAccumulator":
        for phase in KERNEL_PHASES:
            setattr(
                self,
                f"{phase}_ns",
                getattr(self, f"{phase}_ns") + int(payload.get(f"{phase}_ns", 0)),
            )
        for key in (
            "windows",
            "events",
            "cuts",
            "replans",
            "scalar_accesses",
            "batch_accesses",
        ):
            setattr(self, key, getattr(self, key) + int(payload.get(key, 0)))
        return self

    def summary(self) -> Dict[str, object]:
        """Human/bench-facing view: shares + per-phase event rates."""
        total = self.total_ns()
        phases = self.phase_ns()
        shares = {
            k: (v / total if total else 0.0) for k, v in phases.items()
        }
        out: Dict[str, object] = {
            "total_ns": total,
            "phase_ns": phases,
            "phase_share": shares,
        }
        out.update(self.counts())
        if self.plan_ns and self.events:
            out["plan_events_per_s"] = self.events / (self.plan_ns / 1e9)
        return out


class Span:
    """One completed wall-clock span."""

    __slots__ = ("name", "category", "path", "start_ns", "end_ns", "counters")

    def __init__(
        self,
        name: str,
        category: str,
        path: Tuple[str, ...],
        start_ns: int,
        end_ns: int,
        counters: Dict[str, int],
    ) -> None:
        self.name = name
        self.category = category
        self.path = path
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.counters = counters

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_payload(self) -> Dict:
        return {
            "name": self.name,
            "cat": self.category,
            "path": list(self.path),
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "Span":
        return cls(
            name=payload["name"],
            category=payload.get("cat", "obs"),
            path=tuple(payload.get("path", (payload["name"],))),
            start_ns=int(payload["start_ns"]),
            end_ns=int(payload["end_ns"]),
            counters=dict(payload.get("counters", {})),
        )


class SpanProfiler:
    """Record nesting wall-clock spans with counter deltas.

    Spans are recorded on completion (parents close after children, so
    ``spans`` is in end-time order); the open-span stack gives each
    record its full root-down ``path`` for folded-stack export.
    """

    def __init__(self, registry: Optional[CounterRegistry] = None) -> None:
        self.registry = registry
        self.spans: List[Span] = []
        self._stack: List[str] = []
        self.epoch_ns = time.perf_counter_ns()

    @contextmanager
    def span(self, name: str, category: str = "obs") -> Iterator[None]:
        self._stack.append(name)
        path = tuple(self._stack)
        before = self.registry.snapshot() if self.registry is not None else None
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            end = time.perf_counter_ns()
            deltas = (
                self.registry.diff(before) if before is not None else {}
            )
            self._stack.pop()
            self.spans.append(Span(name, category, path, start, end, deltas))

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_perfetto_slices(self, pid: int = 1, tid: int = 1) -> List[Dict]:
        """Complete (``ph: "X"``) slices, microseconds from the epoch."""
        slices: List[Dict] = []
        for span in sorted(self.spans, key=lambda s: (s.start_ns, -s.end_ns)):
            args: Dict = {}
            if span.counters:
                args["counters"] = dict(span.counters)
            slices.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "cat": span.category,
                    "name": span.name,
                    "ts": (span.start_ns - self.epoch_ns) / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "args": args,
                }
            )
        return slices

    def folded_stacks(self) -> Dict[str, int]:
        """Semicolon-joined stacks -> *self* nanoseconds.

        Self time is the span's duration minus its direct children, so
        the folded output sums to the root durations (the flamegraph
        invariant).  Entries that round to zero are kept — a stack that
        happened should appear even if it was cheap.
        """
        child_ns: Dict[Tuple[str, ...], int] = {}
        for span in self.spans:
            if len(span.path) > 1:
                parent = span.path[:-1]
                child_ns[parent] = child_ns.get(parent, 0) + span.duration_ns
        folded: Dict[str, int] = {}
        for span in self.spans:
            self_ns = span.duration_ns - child_ns.get(span.path, 0)
            key = ";".join(span.path)
            folded[key] = folded.get(key, 0) + max(self_ns, 0)
        return dict(sorted(folded.items()))

    def to_payload(self) -> List[Dict]:
        return [span.to_payload() for span in self.spans]

    def load(self, payload: List[Dict]) -> "SpanProfiler":
        for item in payload:
            self.spans.append(Span.from_payload(item))
        return self


def folded_to_lines(folded: Dict[str, int], unit_ns: int = 1000) -> List[str]:
    """Render folded stacks in the ``stack value`` flamegraph.pl format.

    Values are scaled from nanoseconds to ``unit_ns`` units (default
    microseconds) and rounded; zero-valued lines are kept at 0 so the
    stack inventory stays complete.
    """
    return [
        f"{stack} {round(ns / unit_ns)}" for stack, ns in sorted(folded.items())
    ]


# ----------------------------------------------------------------------
# The per-process session
# ----------------------------------------------------------------------
class ObsSession:
    """Everything one process records: counters, spans, kernel phases.

    A session is *installed* (module-global) rather than passed around
    because the things that report into it — ``TimeCacheSystem``
    construction deep inside a sweep job, the batched kernel — are far
    from the code that decides observability is on.  Constructing a
    system while a session is installed auto-attaches the kernel phase
    accumulator; nothing else touches the hot paths.
    """

    def __init__(self, label: str = "main") -> None:
        self.label = label
        self.counters = CounterRegistry()
        self.profiler = SpanProfiler(self.counters)
        # Wall/perf anchor pair, captured together: maps this process's
        # perf_counter_ns axis onto the wall clock, which is how the
        # shard merge aligns spans recorded in different processes.
        self.wall_anchor_ns = time.time_ns()
        self.profiler.epoch_ns = time.perf_counter_ns()
        self.kernel_phases = PhaseAccumulator()
        self.meta: Dict[str, object] = {}
        self._systems: List["TimeCacheSystem"] = []

    def span(self, name: str, category: str = "obs"):
        return self.profiler.span(name, category)

    def attach_system(self, system: "TimeCacheSystem") -> None:
        """Point the hierarchy's kernel profiler at this session.

        The system is also retained so :meth:`finalize` can fold its
        engine-equivalent stats into the counters — sweep jobs build
        systems deep inside library code and never hand them back.
        """
        system.hierarchy.kernel_profiler = self.kernel_phases
        self._systems.append(system)

    def finalize(self) -> None:
        """Absorb the stats of every attached system (idempotent-ish:
        each system is absorbed once, at the first finalize after its
        attachment)."""
        for system in self._systems:
            self.absorb_stats(system)
        self._systems.clear()

    def absorb_stats(self, system: "TimeCacheSystem", prefix: str = "sim.") -> None:
        """Fold a finished system's engine-equivalent stats snapshot in,
        plus each cache's per-set-group s-bit census (same dotted tree on
        both engines — ``Cache``/``FastCache.counters_into``)."""
        from repro.obs.counters import cache_sbit_census

        snapshot = system.stats_snapshot()
        for key in sorted(snapshot):
            value = snapshot[key]
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            self.counters.slot(prefix + key).value += value
        hierarchy = system.hierarchy
        caches = list(hierarchy.l1i) + list(hierarchy.l1d) + [hierarchy.llc]
        for cache in caches:
            cache_sbit_census(
                cache, self.counters, f"{prefix}{cache.name}.", set_groups=4
            )

    def kernel_folded(self) -> Dict[str, int]:
        """The kernel phase breakdown as a folded-stack fragment."""
        return {
            f"kernel;{phase}": ns
            for phase, ns in self.kernel_phases.phase_ns().items()
            if ns
        }

    def to_payload(self) -> Dict:
        """The shard body (see :mod:`repro.obs.shards`)."""
        self.finalize()
        payload: Dict = {
            "label": self.label,
            "counters": self.counters.snapshot(),
            "kernel_phases": self.kernel_phases.to_payload(),
            "spans": self.profiler.to_payload(),
            "span_epoch_ns": self.profiler.epoch_ns,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload


_ACTIVE: Optional[ObsSession] = None


def install_session(session: Optional[ObsSession]) -> Optional[ObsSession]:
    """Install (or clear, with ``None``) the process-global session.

    Returns the previously installed session so callers can restore it
    (``finally: install_session(prev)``).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    return previous


def current_session() -> Optional[ObsSession]:
    return _ACTIVE


@contextmanager
def session_scope(session: ObsSession) -> Iterator[ObsSession]:
    """Install ``session`` for the duration of the block."""
    previous = install_session(session)
    try:
        yield session
    finally:
        install_session(previous)
