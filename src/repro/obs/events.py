"""The typed simulator-time event record and its JSONL wire format.

One event is one metadata transition somewhere in the machine, stamped
with the *simulated* cycle count at which it happened (host-side events
from the sweep executor carry ``ts=0`` and put wall-clock fields in
``args`` instead — simulated time does not exist in the parent process).

The wire format is one JSON object per line, keys sorted, so a trace of
a fixed-seed run is byte-reproducible and can be hashed into a manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

OBS_SCHEMA = 1

#: every kind the built-in instrumentation emits, grouped by source
#: layer.  The set is advisory — sinks accept unknown kinds so new
#: instrumentation does not need a lockstep change here — but tests and
#: ``repro obs summarize`` use it to flag typos.
EVENT_KINDS = frozenset(
    {
        # memsys (both engines, identical streams — the equivalence fuzz
        # test locks this in)
        "cache.fill",
        "cache.evict",
        "cache.invalidate",
        "cache.sbit_set",
        "access.first_miss",
        "access.result",
        # core: the context-switch protocol
        "ctx.switch",
        "rollover.epoch",
        "sbit.flash_clear",
        # os scheduler
        "sched.admit",
        "sched.dispatch",
        "sched.requeue",
        "sched.sleep",
        "sched.wake",
        # attack phase spans
        "phase.begin",
        "phase.end",
        # metrics sampler
        "metrics.sample",
        # sweep executor (host-side)
        "sweep.begin",
        "sweep.job_done",
        "sweep.job_failed",
        "sweep.job_resumed",
        "sweep.heartbeat",
        "sweep.end",
        # attack tournament (host-side): matrix boundaries + one event
        # per scored cell carrying the separation/MI verdict
        "tournament.begin",
        "tournament.cell",
        "tournament.end",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One observed transition.

    ``ts`` is simulated cycles; ``seq`` is a per-tracer monotone emission
    index that totally orders events sharing a timestamp; ``ctx`` is the
    hardware context (-1 when the event has no context attribution);
    ``args`` is a small JSON-serializable payload whose keys depend on
    ``kind`` (see docs/internals.md §11 for the per-kind schema).
    """

    kind: str
    ts: int
    src: str = "sim"
    ctx: int = -1
    seq: int = 0
    args: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "ts": self.ts,
            "src": self.src,
            "ctx": self.ctx,
            "seq": self.seq,
            "args": dict(self.args),
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict) -> "TraceEvent":
        return cls(
            kind=payload["kind"],
            ts=int(payload["ts"]),
            src=payload.get("src", "sim"),
            ctx=int(payload.get("ctx", -1)),
            seq=int(payload.get("seq", 0)),
            args=dict(payload.get("args", {})),
        )


def parse_event(line: str) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_json_line`."""
    return TraceEvent.from_dict(json.loads(line))


def read_events(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file (blank lines skipped)."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield parse_event(line)


def read_events_tolerant(
    path: Union[str, Path],
) -> Tuple[List[TraceEvent], int]:
    """Read a JSONL trace, skipping a torn *final* line.

    A process killed mid-``write`` (chaos kill, OOM, power loss) leaves
    at most one partial line at the end of the file — every earlier line
    was completed before the torn one started.  A torn final line is
    therefore skipped and *counted*; a malformed line anywhere else is
    real corruption and still raises.

    Returns ``(events, skipped)`` where ``skipped`` is 0 or 1.
    """
    events: List[TraceEvent] = []
    bad: Optional[str] = None
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if bad is not None:
                # The malformed line was not the final one: not a torn
                # tail but mid-file corruption.
                raise json.JSONDecodeError(
                    f"malformed trace line is not the final line of {path}",
                    bad,
                    0,
                )
            try:
                events.append(parse_event(stripped))
            except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                bad = stripped
    return events, (1 if bad is not None else 0)
