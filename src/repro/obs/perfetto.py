"""Chrome trace-event (``chrome://tracing`` / Perfetto) export.

Maps a stream of :class:`~repro.obs.events.TraceEvent` records onto the
trace-event JSON format (the ``traceEvents`` array form), so an attack
timeline renders visually:

* ``phase.begin`` / ``phase.end``  -> duration events (``B``/``E``) —
  the attack phases appear as nested spans;
* ``metrics.sample``               -> counter events (``C``) — windowed
  MPKA and first-access rate render as counter tracks;
* everything else                  -> instant events (``i``).

Simulated cycles are written 1:1 as trace microseconds (the format has
no "cycles" unit); absolute durations therefore read as cycle counts.
One process (pid 1) models the simulated machine; each hardware context
becomes a thread, with tid 0 doubling as the "no context" track.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.obs.events import TraceEvent

_SIM_PID = 1


def _tid(event: TraceEvent) -> int:
    return event.ctx if event.ctx >= 0 else 0


def to_chrome_trace(events: Iterable[TraceEvent]) -> Dict:
    """Build the ``{"traceEvents": [...]}`` payload."""
    trace: List[Dict] = [
        {
            "ph": "M",
            "pid": _SIM_PID,
            "name": "process_name",
            "args": {"name": "timecache-sim"},
        }
    ]
    tids_seen: set = set()
    for event in events:
        tid = _tid(event)
        tids_seen.add(tid)
        base = {"pid": _SIM_PID, "tid": tid, "ts": event.ts}
        if event.kind == "phase.begin":
            trace.append(
                {
                    **base,
                    "ph": "B",
                    "cat": event.src,
                    "name": str(event.args.get("name", "phase")),
                }
            )
        elif event.kind == "phase.end":
            trace.append(
                {
                    **base,
                    "ph": "E",
                    "cat": event.src,
                    "name": str(event.args.get("name", "phase")),
                }
            )
        elif event.kind == "metrics.sample":
            numeric = {
                k: v
                for k, v in event.args.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            trace.append(
                {
                    **base,
                    "ph": "C",
                    "cat": event.src,
                    "name": "metrics",
                    "args": numeric,
                }
            )
        else:
            trace.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "cat": event.src,
                    "name": event.kind,
                    "args": dict(event.args),
                }
            )
    for tid in sorted(tids_seen):
        trace.append(
            {
                "ph": "M",
                "pid": _SIM_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"hw-ctx {tid}"},
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[TraceEvent], path: Union[str, Path]
) -> Path:
    """Write the payload; the file loads directly in chrome://tracing."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, sort_keys=True)
    return path
