"""Periodic StatGroup snapshots as a timeseries.

End-of-run counters answer "how much"; the sampler answers "when".  It
rides the hierarchy's ``post_access_listeners`` seam (identical in both
engines) and, every ``every_cycles`` of simulated time, diffs the merged
counter snapshot against the previous sample's, producing a window of
deltas plus the two derived rates the paper's figures care about:

* ``llc_mpka``          — LLC demand misses per kilo-access in the
  window (the model has no instruction counts at hierarchy level, so
  the denominator is demand accesses, not instructions — "MPKA" not
  "MPKI");
* ``first_access_rate`` — first-access misses (all levels) per demand
  access in the window: the defense's signature cost, over time.

Sampling happens *inside* the simulation's access path, so it is never
enabled by the benchmarks' timed sections; see docs/internals.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.timecache import TimeCacheSystem
    from repro.obs.tracer import Tracer

#: per-cache counter suffixes summed (over every cache level) into each
#: window; "accesses" is tracked separately from the hierarchy's own
#: demand counter so L1 lookups and LLC probes are not double-counted
_CACHE_KEYS = ("misses", "first_access_misses", "fills", "evictions")


@dataclass
class MetricsSample:
    """One window: counter deltas plus derived rates at time ``ts``."""

    ts: int
    window: Dict[str, int] = field(default_factory=dict)
    derived: Dict[str, float] = field(default_factory=dict)


class MetricsSampler:
    """Snapshot a system's counters every N simulated cycles."""

    def __init__(
        self,
        system: "TimeCacheSystem",
        every_cycles: int = 10_000,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if every_cycles <= 0:
            raise ValueError("sampler cadence must be positive cycles")
        self.system = system
        self.every_cycles = every_cycles
        self.tracer = tracer
        self.samples: List[MetricsSample] = []
        self._cache_names = [c.name for c in system.hierarchy.all_caches()]
        self._prev: Dict[str, int] = {}
        self._next_at = every_cycles
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "MetricsSampler":
        if not self._attached:
            self._prev = self.system.stats_snapshot()
            self.system.hierarchy.post_access_listeners.append(self._on_access)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.system.hierarchy.post_access_listeners.remove(self._on_access)
            self._attached = False

    # ------------------------------------------------------------------
    def _on_access(self, ctx, line, kind, now, result) -> None:
        if now >= self._next_at:
            self.take_sample(now)
            # Next boundary strictly after `now`, so an idle stretch many
            # windows long yields one catch-up sample, not a burst.
            periods = (now - self._next_at) // self.every_cycles + 1
            self._next_at += periods * self.every_cycles

    def _delta(self, snap: Dict[str, int], key: str) -> int:
        return snap.get(key, 0) - self._prev.get(key, 0)

    def take_sample(self, now: int) -> MetricsSample:
        """Diff counters vs the previous sample and record the window."""
        snap = self.system.stats_snapshot()
        window: Dict[str, int] = {
            "accesses": self._delta(snap, "hierarchy.accesses"),
            "llc_misses": self._delta(
                snap, self.system.hierarchy.llc.name + ".misses"
            ),
        }
        for suffix in _CACHE_KEYS:
            window[suffix] = sum(
                self._delta(snap, f"{name}.{suffix}")
                for name in self._cache_names
            )
        accesses = window["accesses"]
        derived = {
            "llc_mpka": (
                1000.0 * window["llc_misses"] / accesses if accesses else 0.0
            ),
            "first_access_rate": (
                window["first_access_misses"] / accesses if accesses else 0.0
            ),
        }
        sample = MetricsSample(ts=now, window=window, derived=derived)
        self.samples.append(sample)
        self._prev = snap
        if self.tracer is not None:
            self.tracer.emit(
                "metrics.sample",
                src="sampler",
                ts=now,
                args={**window, **derived},
            )
        return sample
