"""Pluggable event sinks: where a tracer's events go.

A sink is anything with ``emit(event)`` and ``close()``.  The built-ins:

* :class:`JsonlSink`       — append each event as one JSON line;
* :class:`RingBufferSink`  — keep the last ``capacity`` events in
  memory, evicting the oldest (for always-on flight recording and for
  tests that want the stream without filesystem traffic);
* :class:`TeeSink`         — fan one stream out to several sinks.
"""

from __future__ import annotations

import os
from collections import deque
from pathlib import Path
from typing import Deque, List, Protocol, Sequence, Union

from repro.obs.events import TraceEvent


class Sink(Protocol):
    """The sink protocol; see module docstring."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class JsonlSink:
    """Append events to a JSONL file, one object per line.

    Lines are buffered by the underlying file object; ``close()`` (or
    using the sink as a context manager) flushes everything.  The parent
    directory is created on demand so ``JsonlSink(tmp / "a" / "t.jsonl")``
    just works.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json_line())
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if not self._handle.closed:
            # Flush + fsync before closing: a crash *after* close() must
            # not lose whole buffered pages of trace — at worst the final
            # line is torn mid-write, which readers skip with a counted
            # warning (see events.read_events_tolerant).
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - e.g. fsync-less targets
                pass
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSink:
    """Bounded in-memory sink: keeps the newest ``capacity`` events.

    ``dropped`` counts evictions, so a consumer can tell a complete
    stream from a truncated one.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._ring)

    def close(self) -> None:
        pass


class TeeSink:
    """Duplicate every event to each of several sinks."""

    def __init__(self, sinks: Sequence[Sink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
