"""Cross-process observability: per-worker shards and the merged view.

A supervised sweep (``repro ... --jobs N``) fans jobs across worker
processes; each worker's wall-clock spans, counters, and kernel-phase
breakdown die with the process unless written down.  This module is the
write-down and the put-back-together:

* **shards** — a worker running under an installed
  :class:`~repro.obs.spans.ObsSession` writes one JSON document per job
  via :mod:`repro.robustness.safeio` (atomic tmp+fsync+rename, so a
  chaos kill can never leave a torn shard).  Rescheduled attempts
  overwrite the same path: the shard set always describes the *final*
  attempt of every job.
* **heartbeat** — the supervisor drops a small ``heartbeat.json`` at
  its poll cadence (throttled) so ``repro obs top`` can render an
  in-flight sweep from outside the process tree.
* **merge** — :func:`merge_shards` folds every shard into one Chrome
  trace with a process track per worker (pid 1 is the supervisor,
  workers get pid 2.. in sorted-label order — deterministic given the
  job labels) plus an aggregate counters document whose totals are the
  key-wise sum of the shards.

Cross-process time alignment: ``perf_counter_ns`` epochs differ per
process, so each shard records a ``(wall_anchor_ns, perf_anchor_ns)``
pair captured together at session start; the merge maps every span onto
the wall-clock axis and rebases onto the earliest anchor in the set.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.counters import merge_counts
from repro.obs.spans import KERNEL_PHASES, ObsSession, PhaseAccumulator, Span
from repro.robustness import safeio

OBS_SHARD_SCHEMA = 1
SHARD_DIR = "shards"
HEARTBEAT_NAME = "heartbeat.json"
MERGED_TRACE_NAME = "merged_trace.json"
COUNTERS_NAME = "counters.json"

__all__ = [
    "OBS_SHARD_SCHEMA",
    "heartbeat_path",
    "load_shard",
    "merge_shards",
    "read_heartbeat",
    "shard_path",
    "write_heartbeat",
    "write_merged",
    "write_shard",
]


def _safe_label(label: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in label)


def shard_path(obs_dir: Union[str, Path], label: str) -> Path:
    return Path(obs_dir) / SHARD_DIR / f"shard-{_safe_label(label)}.json"


def heartbeat_path(obs_dir: Union[str, Path]) -> Path:
    return Path(obs_dir) / HEARTBEAT_NAME


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def write_shard(
    session: ObsSession,
    obs_dir: Union[str, Path],
    *,
    attempt: int = 1,
    ok: bool = True,
) -> Path:
    """Persist one worker session as its job's shard (crash-safe)."""
    payload = {
        "schema": OBS_SHARD_SCHEMA,
        "kind": "obs_shard",
        "pid": os.getpid(),
        "attempt": attempt,
        "ok": ok,
        "wall_anchor_ns": session.wall_anchor_ns,
        "perf_anchor_ns": session.profiler.epoch_ns,
        **session.to_payload(),
    }
    path = shard_path(obs_dir, session.label)
    safeio.write_json_atomic(payload, path)
    return path


def load_shard(path: Union[str, Path]) -> Dict:
    return safeio.read_json_verified(
        path, expected_kind="obs_shard", expected_schema=OBS_SHARD_SCHEMA
    )


def list_shards(obs_dir: Union[str, Path]) -> List[Path]:
    root = Path(obs_dir) / SHARD_DIR
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("shard-*.json"))


# ----------------------------------------------------------------------
# Supervisor side: heartbeat
# ----------------------------------------------------------------------
def write_heartbeat(
    obs_dir: Union[str, Path],
    *,
    status: str,
    done: int,
    total: int,
    failed: int,
    in_flight: List[Dict],
    quarantined: Optional[List[str]] = None,
) -> Path:
    """Drop the supervisor's live-state file (atomic; small)."""
    payload = {
        "schema": OBS_SHARD_SCHEMA,
        "kind": "obs_heartbeat",
        "status": status,
        "wall_s": time.time(),
        "done": done,
        "total": total,
        "failed": failed,
        "in_flight": in_flight,
        "quarantined": list(quarantined or []),
    }
    path = heartbeat_path(obs_dir)
    safeio.write_json_atomic(payload, path)
    return path


def read_heartbeat(obs_dir: Union[str, Path]) -> Optional[Dict]:
    path = heartbeat_path(obs_dir)
    if not path.exists():
        return None
    try:
        return safeio.read_json_verified(
            path, expected_kind="obs_heartbeat",
            expected_schema=OBS_SHARD_SCHEMA,
        )
    except Exception:
        # A reader racing the atomic rename, or a corrupt file: the top
        # view just renders "no heartbeat" rather than dying.
        return None


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _shard_slices(
    shard: Dict, pid: int, base_wall_ns: int
) -> List[Dict]:
    """One shard's spans (tid 1) + synthetic kernel-phase lane (tid 2)."""
    wall = int(shard.get("wall_anchor_ns", 0))
    perf = int(shard.get("perf_anchor_ns", 0))

    def to_us(t_ns: int) -> float:
        return (wall + (t_ns - perf) - base_wall_ns) / 1000.0

    slices: List[Dict] = []
    first_start: Optional[int] = None
    for raw in shard.get("spans", []):
        span = Span.from_payload(raw)
        if first_start is None or span.start_ns < first_start:
            first_start = span.start_ns
        args: Dict = {"path": ";".join(span.path)}
        if span.counters:
            args["counters"] = dict(span.counters)
        slices.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": 1,
                "cat": span.category,
                "name": span.name,
                "ts": to_us(span.start_ns),
                "dur": span.duration_ns / 1000.0,
                "args": args,
            }
        )
    # The kernel phases are accumulators, not timestamped spans; render
    # them as a back-to-back lane so their relative weights are visible
    # in the same trace.  Laid out from the first span's start (or the
    # anchor when the shard recorded no spans).
    phases = shard.get("kernel_phases", {})
    t = first_start if first_start is not None else perf
    for phase in KERNEL_PHASES:
        dur = int(phases.get(f"{phase}_ns", 0))
        if not dur:
            continue
        slices.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": 2,
                "cat": "kernel",
                "name": f"kernel:{phase}",
                "ts": to_us(t),
                "dur": dur / 1000.0,
                "args": {},
            }
        )
        t += dur
    return slices


def merge_shards(
    obs_dir: Union[str, Path],
    supervisor_spans: Optional[List[Dict]] = None,
) -> Tuple[Dict, Dict]:
    """Build the merged trace + aggregate counters from a shard dir.

    Returns ``(trace_payload, counters_payload)``.  Worker pids are
    assigned in sorted-label order starting at 2 (pid 1 is the
    supervisor track), so the merge is deterministic given the job
    labels; the real OS pid of each worker survives in the process-name
    metadata.  ``supervisor_spans`` are ready-made trace slices (already
    on the wall-clock axis, ``ts`` in ns) recorded by the supervisor —
    job attempt windows, merge time.
    """
    shards: List[Dict] = []
    for path in list_shards(obs_dir):
        shards.append(load_shard(path))
    shards.sort(key=lambda s: str(s.get("label", "")))

    anchors = [
        int(s.get("wall_anchor_ns", 0)) for s in shards
    ] + [int(s["ts"]) for s in (supervisor_spans or [])]
    base_wall_ns = min(anchors) if anchors else 0

    trace: List[Dict] = [
        {
            "ph": "M",
            "pid": 1,
            "name": "process_name",
            "args": {"name": "supervisor"},
        }
    ]
    for raw in supervisor_spans or []:
        trace.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "cat": raw.get("cat", "sweep"),
                "name": raw["name"],
                "ts": (int(raw["ts"]) - base_wall_ns) / 1000.0,
                "dur": int(raw.get("dur_ns", 0)) / 1000.0,
                "args": dict(raw.get("args", {})),
            }
        )

    per_shard_counts: Dict[str, Dict[str, int]] = {}
    phase_total = PhaseAccumulator()
    for index, shard in enumerate(shards):
        pid = index + 2
        label = str(shard.get("label", f"shard{index}"))
        trace.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_name",
                "args": {
                    "name": f"worker:{label}",
                    "os_pid": shard.get("pid", -1),
                    "attempt": shard.get("attempt", 1),
                },
            }
        )
        trace.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "name": "thread_name",
                "args": {"name": "spans"},
            }
        )
        trace.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 2,
                "name": "thread_name",
                "args": {"name": "kernel-phases"},
            }
        )
        trace.extend(_shard_slices(shard, pid, base_wall_ns))
        per_shard_counts[label] = {
            k: int(v) for k, v in shard.get("counters", {}).items()
        }
        phase_total.load(shard.get("kernel_phases", {}))

    trace_payload = {"traceEvents": trace, "displayTimeUnit": "ms"}
    counters_payload = {
        "schema": OBS_SHARD_SCHEMA,
        "kind": "obs_counters",
        "shards": per_shard_counts,
        "totals": merge_counts(*per_shard_counts.values()),
        "kernel_phases": phase_total.to_payload(),
    }
    return trace_payload, counters_payload


def write_merged(
    obs_dir: Union[str, Path],
    supervisor_spans: Optional[List[Dict]] = None,
) -> Tuple[Path, Path]:
    """Merge and persist; returns (trace_path, counters_path)."""
    trace_payload, counters_payload = merge_shards(
        obs_dir, supervisor_spans
    )
    obs_dir = Path(obs_dir)
    trace_path = obs_dir / MERGED_TRACE_NAME
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    with open(trace_path, "w") as handle:
        json.dump(trace_payload, handle, sort_keys=True)
    counters_path = obs_dir / COUNTERS_NAME
    safeio.write_json_atomic(counters_payload, counters_path)
    return trace_path, counters_path


def merged_folded_stacks(obs_dir: Union[str, Path]) -> Dict[str, int]:
    """Aggregate folded stacks across shards for ``repro obs flame``.

    Each shard's spans fold under a ``job:<label>`` root frame; kernel
    phases fold under ``kernel;<phase>`` (summed across shards) so one
    flamegraph answers both "which job dominated" and "which kernel
    phase dominated".
    """
    from repro.obs.spans import SpanProfiler

    folded: Dict[str, int] = {}
    phase_total = PhaseAccumulator()
    for path in list_shards(obs_dir):
        shard = load_shard(path)
        profiler = SpanProfiler()
        profiler.load(shard.get("spans", []))
        for stack, ns in profiler.folded_stacks().items():
            folded[stack] = folded.get(stack, 0) + ns
        phase_total.load(shard.get("kernel_phases", {}))
    for phase, ns in phase_total.phase_ns().items():
        if ns:
            key = f"kernel;{phase}"
            folded[key] = folded.get(key, 0) + ns
    return dict(sorted(folded.items()))
