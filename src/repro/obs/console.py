"""Quiet-aware console output for the CLI.

Three message classes, so ``--quiet`` composes with machine-readable
output instead of fighting it:

* :meth:`Console.info`   — progress and bookkeeping ("wrote X",
  "resumed N experiments"); suppressed by ``--quiet``;
* :meth:`Console.result` — the artifact itself (tables, figures,
  summaries); always printed to stdout;
* :meth:`Console.error`  — failures; always printed to stderr.
"""

from __future__ import annotations

import sys
from typing import IO, Optional


class Console:
    """The CLI's output helper; one instance per invocation."""

    def __init__(
        self,
        quiet: bool = False,
        out: Optional[IO[str]] = None,
        err: Optional[IO[str]] = None,
    ) -> None:
        self.quiet = quiet
        self.out = out if out is not None else sys.stdout
        self.err = err if err is not None else sys.stderr

    def info(self, message: str = "") -> None:
        if not self.quiet:
            print(message, file=self.out)

    def result(self, message: str = "") -> None:
        print(message, file=self.out)

    def error(self, message: str) -> None:
        print(message, file=self.err)
