"""Per-run manifests: what produced an artifact, exactly.

A manifest pins everything needed to reproduce or audit a run: the full
configuration (plus a short hash of it), the seed, the engine, the git
commit the code came from, the machine it ran on, and an index of the
artifacts it wrote (each with size and content hash).

Two hash notions, deliberately distinct:

* :func:`config_fingerprint` — sha256 over the *canonical JSON* of the
  config dataclass: equal configs hash equal, across processes and
  machines;
* :meth:`RunManifest.fingerprint` — sha256 over the deterministic
  fields only (command, config hash, seed, engine, artifact content
  hashes).  Volatile fields — timestamp, machine, git state — are
  excluded, so two runs of the same seed/config on different days
  produce the same fingerprint; the determinism test locks this in.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.common.config import SimConfig

MANIFEST_SCHEMA = 1


def config_to_dict(config: SimConfig) -> Dict:
    """The config as plain JSON-serializable data (dataclass tree)."""
    return dataclasses.asdict(config)


def config_fingerprint(config: SimConfig) -> str:
    """sha256 hex digest of the canonical JSON form of ``config``."""
    canonical = json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _git_info() -> Dict[str, Union[str, bool]]:
    """Best-effort commit identity; never raises (sweeps may run from a
    tarball with no git at all)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                capture_output=True, text=True, timeout=5, check=True,
            ).stdout.strip()
        )
        return {"sha": sha, "dirty": dirty}
    except Exception:
        return {"sha": "unknown", "dirty": False}


def _machine_info() -> Dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _artifact_entry(path: Path) -> Dict:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return {
        "name": path.name,
        "bytes": path.stat().st_size,
        "sha256": digest.hexdigest(),
    }


@dataclass
class RunManifest:
    """Everything that identifies one run and its outputs."""

    command: Union[str, List[str]]
    config: Dict
    config_sha256: str
    seed: int
    engine: str
    git: Dict = field(default_factory=dict)
    machine: Dict = field(default_factory=dict)
    created_at: str = ""
    artifacts: List[Dict] = field(default_factory=list)
    extra: Dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        *,
        command: Union[str, List[str]],
        config: SimConfig,
        seed: Optional[int] = None,
        artifacts: Sequence[Union[str, Path]] = (),
        extra: Optional[Dict] = None,
    ) -> "RunManifest":
        """Assemble a manifest for a finished run; hashes each artifact."""
        return cls(
            command=command,
            config=config_to_dict(config),
            config_sha256=config_fingerprint(config),
            seed=config.seed if seed is None else seed,
            engine=config.hierarchy.engine,
            git=_git_info(),
            machine=_machine_info(),
            created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            artifacts=[_artifact_entry(Path(p)) for p in artifacts],
            extra=dict(extra or {}),
        )

    def fingerprint(self) -> str:
        """Deterministic identity: stable across machines and days for a
        fixed (command, config, seed, engine, artifact contents)."""
        stable = {
            "command": self.command,
            "config_sha256": self.config_sha256,
            "seed": self.seed,
            "engine": self.engine,
            "artifacts": [
                {"name": a["name"], "sha256": a["sha256"]}
                for a in self.artifacts
            ],
            "extra": self.extra,
        }
        canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> Dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "run_manifest",
            "command": self.command,
            "config": self.config,
            "config_sha256": self.config_sha256,
            "seed": self.seed,
            "engine": self.engine,
            "git": self.git,
            "machine": self.machine,
            "created_at": self.created_at,
            "artifacts": self.artifacts,
            "fingerprint": self.fingerprint(),
            "extra": self.extra,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Publish the manifest crash-safely (atomic rename + checksum +
        rotated backup, like every JSON artifact the repo writes)."""
        from repro.robustness import safeio

        return safeio.write_json_atomic(self.to_dict(), path)


def load_manifest(path: Union[str, Path]) -> Dict:
    """Read a manifest back as plain data, validating the kind tag and
    the content checksum (corrupt manifests fall back to the rotated
    ``.bak`` before failing)."""
    from repro.common.errors import CheckpointCorruptionError
    from repro.robustness import safeio

    payload, _ = safeio.read_json_recovering(path)
    if payload is None:
        raise CheckpointCorruptionError(path, reasons=["missing file"])
    if payload.get("kind") != "run_manifest":
        raise ValueError(f"{path}: not a run manifest")
    return payload
