"""Hierarchical counters: cheap int slots under dotted names.

The engines already keep their authoritative statistics in
``StatGroup`` / bare-int slots (``docs/internals.md`` §10); what was
missing is a *registry* that (a) hands out increment handles cheap
enough for instrumented hot paths, (b) snapshots and diffs whole
counter trees, and (c) renders them in a format dashboards already
speak.  This module adds exactly that:

* :class:`CounterSlot`  — a mutable int cell.  Hot code holds the slot
  and does ``slot.value += n``; no dict lookup, no method call.
* :class:`CounterRegistry` — dotted-name tree of slots
  (``l1.set_group.0.sbit_miss``, ``kernel.plan.events``) with
  ``snapshot()`` / ``diff()`` / prefix ``rollup()`` and OpenMetrics
  text export (:func:`to_openmetrics`).
* :func:`registry_from_snapshot` — the engine-equivalent view: both
  engines produce the same ``TimeCacheSystem.stats_snapshot()`` keys
  (the differential fuzz locks that in), so loading a snapshot yields
  a registry whose tree is identical for ``engine="object"`` and
  ``engine="fast"``.

Snapshots are plain ``{dotted_name: int}`` dicts — JSON-safe, mergeable
by summation, and the unit the cross-process shard merge
(:mod:`repro.obs.shards`) sums over.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "CounterRegistry",
    "CounterSlot",
    "cache_sbit_census",
    "merge_counts",
    "registry_from_snapshot",
    "to_openmetrics",
]


class CounterSlot:
    """One named counter cell.

    Instrumented code keeps a reference and bumps ``value`` directly;
    the registry only intervenes at snapshot time.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def bump(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSlot({self.name!r}, {self.value})"


class CounterRegistry:
    """A flat dict of :class:`CounterSlot` keyed by dotted name.

    The dots are a *naming convention*, not nested objects: lookup
    stays one dict hit and iteration order is insertion order, which
    keeps snapshots deterministic for a deterministic program.
    """

    def __init__(self) -> None:
        self._slots: Dict[str, CounterSlot] = {}

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def slot(self, name: str) -> CounterSlot:
        """Get-or-create the slot for ``name``."""
        found = self._slots.get(name)
        if found is None:
            found = CounterSlot(name)
            self._slots[name] = found
        return found

    def bump(self, name: str, n: int = 1) -> None:
        """Convenience increment for non-hot-path call sites."""
        self.slot(name).value += n

    def load(self, counts: Mapping[str, int]) -> "CounterRegistry":
        """Add ``counts`` into the registry (summing with existing)."""
        for name, value in counts.items():
            self.slot(name).value += int(value)
        return self

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        for name, slot in self._slots.items():
            yield name, slot.value

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Current values as a plain dict (sorted keys, JSON-safe)."""
        return {name: self._slots[name].value for name in sorted(self._slots)}

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Deltas since ``before`` (a prior :meth:`snapshot`).

        Counters absent from ``before`` count from zero; counters that
        did not move are omitted so span payloads stay small.
        """
        out: Dict[str, int] = {}
        for name in sorted(self._slots):
            delta = self._slots[name].value - int(before.get(name, 0))
            if delta:
                out[name] = delta
        return out

    def rollup(self, depth: int = 1) -> Dict[str, int]:
        """Sum leaves under each dotted prefix of length ``depth``.

        ``rollup(1)`` of ``{"l1.fills": 3, "l1.misses": 2, "llc.fills": 1}``
        is ``{"l1": 5, "llc": 1}``.
        """
        if depth < 1:
            raise ValueError(f"rollup depth must be >= 1: {depth}")
        out: Dict[str, int] = {}
        for name, slot in self._slots.items():
            prefix = ".".join(name.split(".")[:depth])
            out[prefix] = out.get(prefix, 0) + slot.value
        return dict(sorted(out.items()))


# ----------------------------------------------------------------------
# Engine-equivalent view
# ----------------------------------------------------------------------
def registry_from_snapshot(
    snapshot: Mapping[str, object], prefix: str = ""
) -> CounterRegistry:
    """Build a registry from ``TimeCacheSystem.stats_snapshot()``.

    ``stats_snapshot`` is the engine-equivalence surface: the object
    model and the fast engine produce identical key/value trees for the
    same run, so this view is *the* counter tree both engines share.
    Non-integer entries (derived floats like rates) are skipped —
    counters are monotone ints by contract.
    """
    registry = CounterRegistry()
    for key in sorted(snapshot):
        value = snapshot[key]
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        name = f"{prefix}{key}" if prefix else key
        registry.slot(name).value = value
    return registry


def cache_sbit_census(
    cache, registry: CounterRegistry, prefix: str, set_groups: int = 4
) -> None:
    """Fold a per-set-group s-bit/occupancy census into ``registry``.

    Duck-typed over both engines: the object :class:`~repro.memsys.cache.Cache`
    and the struct-of-arrays ``FastCache`` share the positional ``sbits``
    bitmask and ``valid`` arrays plus ``contexts()``/``ctx_column()``, so
    the resulting ``<prefix>set_group.<g>.*`` tree is engine-equivalent.
    This is a snapshot, not hot-path instrumentation — it walks the
    arrays once, at absorb time.
    """
    import numpy as np

    sbits = cache.sbits
    per_set = np.zeros(cache.num_sets, dtype=np.int64)
    for ctx in cache.contexts:
        col = np.int64(cache.ctx_column(ctx))
        per_set += ((sbits >> col) & 1).sum(axis=1)
    valid_per_set = cache.valid.sum(axis=1)
    groups = max(1, min(int(set_groups), cache.num_sets))
    bounds = [round(g * cache.num_sets / groups) for g in range(groups + 1)]
    for g in range(groups):
        lo, hi = bounds[g], bounds[g + 1]
        registry.slot(f"{prefix}set_group.{g}.sbits_set").value += int(
            per_set[lo:hi].sum()
        )
        registry.slot(f"{prefix}set_group.{g}.valid_lines").value += int(
            valid_per_set[lo:hi].sum()
        )


def merge_counts(*counts: Mapping[str, int]) -> Dict[str, int]:
    """Sum several count dicts key-wise (the shard-merge primitive)."""
    out: Dict[str, int] = {}
    for mapping in counts:
        for name, value in mapping.items():
            out[name] = out.get(name, 0) + int(value)
    return dict(sorted(out.items()))


# ----------------------------------------------------------------------
# OpenMetrics export
# ----------------------------------------------------------------------
_METRIC_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(dotted: str) -> str:
    """Map a dotted counter name onto the OpenMetrics grammar.

    Dots become underscores; any remaining illegal character does too.
    A leading digit gets an underscore prefix so ``0.sbit_miss`` style
    set-group names stay legal.
    """
    name = _METRIC_SAFE.sub("_", dotted.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def to_openmetrics(
    counts: Mapping[str, int],
    namespace: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render counts as OpenMetrics / Prometheus text exposition.

    Counter semantics only (monotone totals); the caller supplies any
    constant labels (e.g. ``{"engine": "fast", "job": "spec_pair"}``).
    The output ends with the OpenMetrics ``# EOF`` marker so it parses
    as a complete exposition.
    """
    label_str = ""
    if labels:
        parts = []
        for key in sorted(labels):
            value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
            parts.append(f'{key}="{value}"')
        label_str = "{" + ",".join(parts) + "}"
    lines = []
    for dotted in sorted(counts):
        metric = f"{namespace}_{_metric_name(dotted)}" if namespace else _metric_name(dotted)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"# HELP {metric} repro counter {dotted}")
        lines.append(f"{metric}_total{label_str} {int(counts[dotted])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
