"""The emission guard and the hook wiring.

A :class:`Tracer` owns a sink and a monotone sequence counter, and knows
how to install itself on the existing observation seams:

* every cache's ``event_listener`` slot (via the chaining
  ``add_event_listener`` helper, so a robustness checker and a tracer can
  coexist) — fills, evictions, invalidations, s-bit sets;
* the hierarchy's ``post_access_listeners`` — first-access misses (and,
  with ``trace_all_accesses``, every access result);
* ``TimeCacheSystem.obs_tracer`` — context-switch costs, rollover
  epochs, and the conservative s-bit flash-clear;
* the scheduler's ``event_hook`` (via :meth:`attach_kernel`) — dispatch,
  requeue, sleep, wake.

**Cost when disabled.**  ``Tracer(enabled=False)`` attaches *nothing*:
every hot path keeps taking its pre-existing ``listener is None`` /
empty-list branch, so disabled tracing adds zero code to the measured
paths.  ``bench_hierarchy_access_traced`` proves this stays under 5%.

**Cost when enabled.**  Attaching listeners routes the fast engine's
fill/s-bit operations through its event-emitting slow paths (the same
fallbacks the invariant checker uses), so an enabled trace is honest but
slower — never enable tracing inside a timing window you intend to
compare against an untraced baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

from repro.obs.events import TraceEvent
from repro.obs.sinks import Sink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import SwitchCost
    from repro.core.timecache import TimeCacheSystem
    from repro.os.kernel import Kernel


class Tracer:
    """Emit :class:`TraceEvent` records into a sink, or nothing when
    disabled.  One tracer serves one attached system at a time."""

    def __init__(self, sink: Optional[Sink] = None, enabled: bool = True) -> None:
        if enabled and sink is None:
            raise ValueError("an enabled tracer needs a sink")
        self.sink = sink
        self.enabled = enabled
        self.trace_all_accesses = False
        self._seq = 0
        self._clock = None
        self._system: Optional["TimeCacheSystem"] = None
        self._kernel: Optional["Kernel"] = None
        self._cache_listeners: List[Tuple[object, Callable]] = []

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        src: str = "sim",
        ctx: int = -1,
        args: Optional[dict] = None,
        ts: Optional[int] = None,
    ) -> None:
        """The single guard every instrumented site goes through."""
        if not self.enabled:
            return
        if ts is None:
            ts = self._clock.now if self._clock is not None else 0
        self.sink.emit(
            TraceEvent(
                kind=kind,
                ts=ts,
                src=src,
                ctx=ctx,
                seq=self._seq,
                args=args if args is not None else {},
            )
        )
        self._seq += 1

    @contextmanager
    def span(
        self, name: str, src: str = "attack", ctx: int = -1
    ) -> Iterator[None]:
        """A begin/end pair in simulated time (attack phases, regions).

        The end event is emitted when the block completes — inside a
        program generator that is the simulated instant the last yielded
        op of the phase retired.
        """
        self.emit("phase.begin", src=src, ctx=ctx, args={"name": name})
        try:
            yield
        finally:
            self.emit("phase.end", src=src, ctx=ctx, args={"name": name})

    # ------------------------------------------------------------------
    # Hook wiring
    # ------------------------------------------------------------------
    def attach(self, system: "TimeCacheSystem") -> "Tracer":
        """Install hooks on a system.  No-op when disabled."""
        if not self.enabled or self._system is not None:
            return self
        self._system = system
        self._clock = system.clock
        hierarchy = system.hierarchy
        for cache in hierarchy.all_caches():
            listener = self._make_cache_listener(cache.name)
            cache.add_event_listener(listener)
            self._cache_listeners.append((cache, listener))
        hierarchy.post_access_listeners.append(self._post_access)
        system.obs_tracer = self
        return self

    def detach(self) -> None:
        """Undo :meth:`attach` (and :meth:`attach_kernel`)."""
        system = self._system
        if system is None:
            return
        for cache, listener in self._cache_listeners:
            cache.remove_event_listener(listener)
        self._cache_listeners = []
        system.hierarchy.post_access_listeners.remove(self._post_access)
        system.obs_tracer = None
        if self._kernel is not None:
            self._kernel.scheduler.event_hook = None
            self._kernel = None
        self._system = None
        self._clock = None

    def attach_kernel(self, kernel: "Kernel") -> "Tracer":
        """Attach to the kernel's system plus its scheduler."""
        if not self.enabled:
            return self
        self.attach(kernel.system)
        self._kernel = kernel
        kernel.scheduler.event_hook = self._sched_event
        return self

    # ------------------------------------------------------------------
    # Listener bodies (only ever installed when enabled)
    # ------------------------------------------------------------------
    def _make_cache_listener(
        self, cache_name: str
    ) -> Callable[[str, int, int, int], None]:
        def listener(event: str, set_idx: int, way: int, ctx: int) -> None:
            self.emit(
                "cache." + event,
                src=cache_name,
                ctx=ctx,
                args={"set": set_idx, "way": way},
            )

        return listener

    def _post_access(self, ctx, line, kind, now, result) -> None:
        if result.first_access:
            self.emit(
                "access.first_miss",
                src="hierarchy",
                ctx=ctx,
                ts=now,
                args={
                    "line": line,
                    "level": result.level,
                    "latency": result.latency,
                    "kind": kind.name,
                },
            )
        elif self.trace_all_accesses:
            self.emit(
                "access.result",
                src="hierarchy",
                ctx=ctx,
                ts=now,
                args={
                    "line": line,
                    "level": result.level,
                    "latency": result.latency,
                    "kind": kind.name,
                },
            )

    def on_context_switch(
        self,
        outgoing: Optional[int],
        incoming: int,
        ctx: int,
        now: int,
        cost: "SwitchCost",
    ) -> None:
        """Called by ``TimeCacheSystem.context_switch`` (guarded there)."""
        self.emit(
            "ctx.switch",
            src="os",
            ctx=ctx,
            ts=now,
            args={
                "outgoing": -1 if outgoing is None else outgoing,
                "incoming": incoming,
                "dma_cycles": cost.dma_cycles,
                "comparator_cycles": cost.comparator_cycles,
                "rollover": cost.rollover_reset,
            },
        )
        if cost.rollover_reset:
            # The comparator window crossed a timestamp wrap: the restore
            # conservatively flash-cleared the whole column (Section VI-C).
            self.emit(
                "rollover.epoch", src="os", ctx=ctx, ts=now,
                args={"incoming": incoming},
            )
            self.emit(
                "sbit.flash_clear", src="os", ctx=ctx, ts=now,
                args={"reason": "rollover", "incoming": incoming},
            )

    def _sched_event(self, event: str, tid: int, ctx: int, now: int) -> None:
        self.emit(
            "sched." + event,
            src="sched",
            ctx=ctx,
            ts=now if now >= 0 else None,
            args={"task": tid},
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.detach()
        if self.sink is not None:
            self.sink.close()
