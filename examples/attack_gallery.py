#!/usr/bin/env python
"""Attack gallery: every side channel from the paper, in one run.

For each attack the script reports whether the channel leaks in the
baseline, and what happens under TimeCache (or the relevant TimeCache
option) — reproducing the paper's Section VI/VII taxonomy:

  blocked by first-access delay : flush+reload, evict+reload,
                                  invalidate+transfer (both variants)
  blocked by constant-time flush: flush+flush
  out of scope (randomizing     : prime+probe, LRU attack,
  caches are the complement)      evict+time

Run:  python examples/attack_gallery.py
"""

from repro.attacks import (
    run_evict_reload,
    run_evict_time,
    run_flush_flush,
    run_invalidate_transfer,
    run_lru_attack,
    run_microbenchmark_attack,
    run_prime_probe,
    run_smt_flush_reload,
    run_spectre_covert_channel,
)
from repro.common import scaled_experiment_config
from repro.common.config import HierarchyConfig


def row(name, baseline_leaks, defended_leaks, note=""):
    print(
        f"  {name:<24} baseline: {'LEAKS   ' if baseline_leaks else 'no leak '}"
        f" TimeCache: {'LEAKS' if defended_leaks else 'blocked':<8} {note}"
    )


def smt_config():
    """One physical core with two hyperthreads (shared L1s)."""
    import dataclasses

    base = scaled_experiment_config(num_cores=1)
    hierarchy = HierarchyConfig(
        num_cores=1,
        threads_per_core=2,
        l1i=base.hierarchy.l1i,
        l1d=base.hierarchy.l1d,
        llc=base.hierarchy.llc,
    )
    return dataclasses.replace(base, hierarchy=hierarchy)


def main() -> None:
    cfg1 = scaled_experiment_config(num_cores=1)
    cfg2 = scaled_experiment_config(num_cores=2)
    print("=== attack gallery ===\n")

    base = run_microbenchmark_attack(cfg1.baseline(), shared_lines=128)
    tc = run_microbenchmark_attack(cfg1, shared_lines=128)
    row("flush+reload", base.verdict(), tc.verdict())

    smt = smt_config()
    base = run_smt_flush_reload(smt.baseline())
    tc = run_smt_flush_reload(smt)
    row(
        "flush+reload (SMT)", base.verdict(), tc.verdict(),
        "(sibling hyperthread)",
    )

    base = run_spectre_covert_channel(cfg2.baseline(), secret=0x5A)
    tc = run_spectre_covert_channel(cfg2, secret=0x5A)
    row(
        "Spectre covert channel",
        base.leaked,
        tc.leaked,
        "(transient leak's transmit end)",
    )

    base = run_evict_reload(cfg1.baseline(), rounds=4)
    tc = run_evict_reload(cfg1, rounds=4)
    row("evict+reload", base.verdict(), tc.verdict())

    from repro.attacks import run_keystroke_attack

    base = run_keystroke_attack(cfg2.baseline(), presses=6)
    tc = run_keystroke_attack(cfg2, presses=6)
    row(
        "keystroke timing",
        base.timeline_recovered,
        tc.timeline_recovered,
        "(inter-keystroke intervals via shared lib)",
    )

    base = run_invalidate_transfer(cfg2.baseline(), victim_touches=True)
    tc = run_invalidate_transfer(cfg2, victim_touches=True)
    row("invalidate+transfer", base.verdict(), tc.verdict())

    base = run_invalidate_transfer(
        cfg2.baseline(), victim_touches=True, victim_writes=True
    )
    tc = run_invalidate_transfer(cfg2, victim_touches=True, victim_writes=True)
    row("coherence E-vs-S", base.verdict(), tc.verdict())

    base = run_flush_flush(cfg1.baseline(), victim_touches=True)
    plain = run_flush_flush(cfg1, victim_touches=True)
    ct_cfg = cfg1.with_timecache(constant_time_flush=True)
    fixed_active = run_flush_flush(ct_cfg, victim_touches=True)
    fixed_idle = run_flush_flush(ct_cfg, victim_touches=False)
    ct_blocked = set(fixed_active.latencies) == set(fixed_idle.latencies)
    row(
        "flush+flush",
        base.verdict(),
        plain.verdict() and not ct_blocked,
        "(needs constant-time clflush, Section VII-C)",
    )

    base_active = run_prime_probe(cfg1.baseline(), victim_active=True)
    tc_active = run_prime_probe(cfg1, victim_active=True)
    row(
        "prime+probe",
        base_active.extra["detected"],
        tc_active.extra["detected"],
        "(contention: randomizing caches' job)",
    )

    base_active = run_lru_attack(cfg1.baseline(), victim_touches=True)
    tc_active = run_lru_attack(cfg1, victim_touches=True)
    row(
        "LRU attack",
        base_active.verdict(),
        tc_active.verdict(),
        "(eviction-set attack: out of scope, Section VII-A)",
    )

    base_et = run_evict_time(cfg1.baseline(), victim_uses_line=True)
    tc_et = run_evict_time(cfg1, victim_uses_line=True)
    row(
        "evict+time",
        base_et.extra["slowdown"] > 20,
        tc_et.extra["slowdown"] > 20,
        "(victim's own misses; coarse channel, Section VII-D)",
    )

    print(
        "\nTimeCache eliminates the *reuse* channels (the precise,"
        " low-noise ones)\nand composes with randomizing caches for the"
        " contention channels."
    )


if __name__ == "__main__":
    main()
