#!/usr/bin/env python
"""Reproduce a slice of Table II / Figure 7: SPEC-pair overhead.

Runs a handful of the paper's single-core benchmark pairs (two processes
time-sliced on one core, sharing libc, kernel text, and — for 2Xfoo
pairs — the benchmark binary) under the baseline and under TimeCache,
and prints normalized execution time and LLC MPKI in the paper's Table
II layout.

The full 24-pair sweep lives in benchmarks/test_table2_fig7_spec.py;
this example keeps the pair list short so it finishes in under a minute.

Run:  python examples/spec_overhead.py [instructions_per_process]
"""

import sys

from repro.analysis import render_mpki_table, render_table2, spec_pair_sweep
from repro.analysis.tables import summarize_overheads
from repro.workloads.mixes import PAPER_TABLE2_SPEC

PAIRS = [
    ("specrand", "specrand"),
    ("lbm", "lbm"),
    ("wrf", "wrf"),
    ("perlbench", "perlbench"),
    ("namd", "lbm"),
    ("h264ref", "sjeng"),
]


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    print("=== SPEC2006-like pair overhead (Table II / Figure 7) ===\n")
    print(f"simulating {len(PAIRS)} pairs x 2 configs x {instructions} instructions/process\n")
    results = spec_pair_sweep(pairs=PAIRS, instructions=instructions)
    print(render_table2(results, paper=PAPER_TABLE2_SPEC))
    print()
    print("first-access MPKI per cache level (Figure 8 view):")
    print(render_mpki_table(results))
    summary = summarize_overheads(results)
    print(
        f"\ngeomean overhead: {summary['geomean_overhead']:.2%} "
        f"(paper, full sweep: 1.13%)"
    )
    print(
        f"context-switch bookkeeping share of runtime: "
        f"{summary['mean_bookkeeping_fraction']:.3%} (paper: ~0.02%)"
    )


if __name__ == "__main__":
    main()
