#!/usr/bin/env python
"""Quickstart: build a TimeCache machine and watch the defense work.

Walks through the library's core API in five minutes:

1. construct a simulated machine from a configuration;
2. observe normal caching (cold miss, then hits);
3. observe the *first-access miss* — the paper's central mechanism —
   when a second hardware context touches a line someone else cached;
4. observe context-switch handling: s-bits saved, restored, and
   repaired by the bit-serial timestamp comparator;
5. compare against the undefended baseline.

Run:  python examples/quickstart.py
"""

from repro import AccessKind, TimeCacheSystem, scaled_experiment_config


def main() -> None:
    config = scaled_experiment_config(num_cores=2)
    system = TimeCacheSystem(config)
    lat = config.hierarchy.latency
    addr = 0x1000

    print("=== TimeCache quickstart ===\n")
    print(
        f"machine: {config.hierarchy.num_cores} cores, "
        f"L1 {config.hierarchy.l1d.size_bytes // 1024}K, "
        f"LLC {config.hierarchy.llc.size_bytes // 1024}K, "
        f"latencies L1/{lat.l1_hit} LLC/{lat.l2_hit} DRAM/{lat.dram}\n"
    )

    # 1. Cold miss: data comes from DRAM.
    r = system.access(0, addr, AccessKind.LOAD, now=0)
    print(f"ctx0 first load   : {r.latency:4d} cycles from {r.level}")

    # 2. Warm hit: ctx0 brought the line in itself, so it hits.
    r = system.access(0, addr, AccessKind.LOAD, now=300)
    print(f"ctx0 reload       : {r.latency:4d} cycles from {r.level}")

    # 3. First access by another context: tag hit, but ctx1's s-bit is
    #    clear, so the request goes down to memory and the response is
    #    delayed — ctx1 cannot tell the line was already cached.
    r = system.access(1, addr, AccessKind.LOAD, now=600)
    print(
        f"ctx1 first access : {r.latency:4d} cycles from {r.level} "
        f"(first_access={r.first_access})"
    )

    # 4. After paying once, ctx1 enjoys normal hits.
    r = system.access(1, addr, AccessKind.LOAD, now=1200)
    print(f"ctx1 reload       : {r.latency:4d} cycles from {r.level}")

    # 5. Context switch on ctx0: task 1 leaves, task 2 arrives.  The OS
    #    saves task 1's s-bits with timestamp Ts; hardware restores task
    #    2's (empty) view.
    cost = system.context_switch(outgoing_task=1, incoming_task=2, ctx=0, now=2000)
    print(
        f"\ncontext switch    : {cost.dma_cycles} cycles DMA + "
        f"{cost.comparator_cycles} cycles bit-serial comparator"
    )
    r = system.access(0, addr, AccessKind.LOAD, now=2100)
    print(
        f"task2 on ctx0     : {r.latency:4d} cycles "
        f"(first_access={r.first_access}) — new task, new view"
    )

    # Switch back: task 1's saved s-bits are restored and the comparator
    # clears only bits for slots refilled since Ts.
    cost = system.context_switch(2, 1, ctx=0, now=3000)
    r = system.access(0, addr, AccessKind.LOAD, now=3100)
    print(
        f"task1 back on ctx0: {r.latency:4d} cycles from {r.level} "
        f"— its caching context survived the switch"
    )

    # 6. The same story without the defense: the baseline leaks.
    baseline = TimeCacheSystem(config.baseline())
    baseline.access(0, addr, AccessKind.LOAD, now=0)
    r = baseline.access(1, addr, AccessKind.LOAD, now=300)
    print(
        f"\nbaseline ctx1     : {r.latency:4d} cycles from {r.level} "
        f"— a fast cross-context hit: exactly the reuse side channel"
    )

    print("\nstats:", {
        k: v for k, v in system.stats_snapshot().items()
        if "first_access" in k or k.endswith(".hits")
    })


if __name__ == "__main__":
    main()
