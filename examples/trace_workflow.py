#!/usr/bin/env python
"""Tooling workflow: record a workload trace, replay it under every
defense, export structured results.

This is the downstream-user loop for regression experiments:

1. record a synthetic benchmark's operation stream to a trace file
   (text, diffable, one op per line);
2. replay the *identical* stream under the undefended baseline, under
   TimeCache, and under the partitioning baseline — the TimeCache
   replay runs with an obs Tracer attached, leaving a simulator-time
   event stream (fills, first accesses, context switches) beside the
   results;
3. export the comparison as JSON, a Perfetto-loadable trace of the
   defended replay, and a run manifest indexing every artifact.

Run:  python examples/trace_workflow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.export import save_json
from repro.analysis.runner import write_run_manifest
from repro.common import scaled_experiment_config
from repro.cpu.tracing import record_program, save_trace, trace_file_program
from repro.obs import JsonlSink, Tracer, read_events, write_chrome_trace
from repro.os.kernel import Kernel
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.profiles import spec_profile


def replay(config, trace_path, label, tracer=None):
    """Replay the trace as TWO processes time-sliced on one core — the
    paper's single-core pair methodology.  Their text/libc/kernel pages
    deduplicate (shared software); data stays private, so the defenses'
    costs (first accesses, partition flushes) actually engage."""
    kernel = Kernel(config)
    if tracer is not None:
        tracer.attach_kernel(kernel)
    builder = WorkloadBuilder(kernel, seed=11)
    tasks = []
    for instance in range(2):
        process, _layout_task = builder.build_process(
            spec_profile("perlbench"), instance, instructions=10
        )
        task = process.spawn(
            trace_file_program(f"replay-{label}-{instance}", trace_path),
            affinity=0,
        )
        kernel.submit(task)
        tasks.append(task)
    kernel.run()
    if tracer is not None:
        tracer.detach()
    hier = kernel.system.hierarchy
    return {
        "label": label,
        # one core: the pair's makespan is the sum of both tasks' time
        "cycles": sum(t.cycles for t in tasks),
        "instructions": sum(t.instructions for t in tasks),
        "llc_misses": hier.llc.stats.get("misses"),
        "llc_first_access_misses": hier.llc.stats.get("first_access_misses"),
    }


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="timecache-traces-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    print("=== trace workflow ===\n")

    # 1. record
    kernel = Kernel(scaled_experiment_config())
    builder = WorkloadBuilder(kernel, seed=11)
    _, task = builder.build_process(
        spec_profile("perlbench"), 0, instructions=40_000
    )
    ops = record_program(task.program)
    trace_path = workdir / "perlbench.trace"
    count = save_trace(ops, trace_path)
    print(f"recorded {count} ops -> {trace_path}")

    # 2. replay under each configuration; the defended replay is traced
    base_cfg = scaled_experiment_config()
    obs_path = workdir / "timecache_replay.jsonl"
    tracer = Tracer(JsonlSink(obs_path))
    rows = [
        replay(base_cfg.baseline(), trace_path, "baseline"),
        replay(base_cfg, trace_path, "timecache", tracer=tracer),
        replay(base_cfg.with_partitioning(domains=2), trace_path, "partition"),
    ]
    tracer.close()
    base_cycles = rows[0]["cycles"]
    print(f"\n{'config':<12} {'cycles':>10} {'norm':>8} {'LLC miss':>9} {'fa-miss':>8}")
    for row in rows:
        print(
            f"{row['label']:<12} {row['cycles']:>10} "
            f"{row['cycles'] / base_cycles:>8.4f} "
            f"{row['llc_misses']:>9} {row['llc_first_access_misses']:>8}"
        )

    # 3. export: results, a Perfetto view of the defended replay, and a
    # manifest so the workdir is self-describing
    out = save_json(
        {"schema": 1, "kind": "trace_replay", "results": rows},
        workdir / "replay_results.json",
    )
    perfetto = write_chrome_trace(
        read_events(obs_path), workdir / "timecache_replay.perfetto.json"
    )
    manifest_path = workdir / "manifest.json"
    write_run_manifest(
        manifest_path,
        command=["examples/trace_workflow.py"],
        config=base_cfg,
        artifacts=[out, obs_path, perfetto],
        extra={"rows": len(rows)},
    )
    print(f"\nwrote {out}")
    print(f"wrote {obs_path} (open {perfetto.name} in ui.perfetto.dev)")
    print(f"wrote {manifest_path}")
    print(
        "\nSame ops, three machines: the trace file pins the workload so "
        "any\ncycle difference is attributable to the defense alone."
    )
    print(
        "(Note: two identical back-to-back runs of one short binary are "
        "the maximal-\nsharing corner case — nearly every shared line is "
        "a first access, amortized\nover a single time slice.  The "
        "paper-scale experiments in benchmarks/ show\nthe steady-state "
        "~1% overhead.)"
    )


if __name__ == "__main__":
    main()
