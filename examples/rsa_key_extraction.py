#!/usr/bin/env python
"""The paper's headline demonstration: GnuPG-style RSA key extraction.

A victim process performs RSA signing with square-and-multiply modular
exponentiation; its instruction fetches hit the square/multiply/reduce
functions of a shared crypto library.  A flush+reload spy on another
core monitors those three cache lines and decodes the private exponent
from the temporal fetch pattern.

Running this script shows the attack succeeding on the baseline cache
and recovering exactly nothing under TimeCache, while the victim's
arithmetic stays correct throughout.

Run:  python examples/rsa_key_extraction.py
"""

from repro.attacks.rsa import generate_key, run_rsa_attack
from repro.common import scaled_experiment_config


def show(result, label):
    truth = "".join(map(str, result.true_bits))
    recovered = "".join(map(str, result.recovered_bits))
    print(f"--- {label} ---")
    print(f"  probe hits         : {result.probe_hits}/{result.probe_total}")
    print(f"  attacker samples   : {len(result.samples)}")
    print(f"  secret exponent    : {truth}")
    print(f"  recovered bits     : {recovered or '(none)'}")
    print(f"  bit accuracy       : {result.accuracy:.1%}")
    print(f"  key recovered      : {result.key_recovered}")
    print(f"  RSA result correct : {result.ciphertext_ok}")
    print()


def main() -> None:
    key = generate_key(seed=7, prime_bits=28)
    print("=== RSA flush+reload attack (Section VI-A2) ===\n")
    print(f"victim key: n={key.n:#x}, {len(key.d_bits)}-bit private exponent\n")

    baseline = run_rsa_attack(
        scaled_experiment_config(num_cores=2).baseline(), key=key
    )
    show(baseline, "baseline cache: the attack goes through")

    defended = run_rsa_attack(scaled_experiment_config(num_cores=2), key=key)
    show(defended, "TimeCache: the defense breaks the attack")

    assert baseline.key_recovered and not defended.key_recovered
    print(
        "TimeCache forced every one of the attacker's timed reloads to "
        "observe memory latency\n(each followed a flush, so each was a "
        "first access) — no hits, no signal, no key."
    )


if __name__ == "__main__":
    main()
