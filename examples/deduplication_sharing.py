#!/usr/bin/env python
"""Memory deduplication made safe: the paper's motivating deployment.

The introduction argues that preventing reuse attacks lets providers
"deploy deduplication or copy-on-write sharing ... for increased
performance and reduced space utilization" without opening a side
channel.  This example builds that scenario end to end:

1. two container-like processes load the same application image — the
   simulated kernel deduplicates the identical pages (one physical copy);
2. dedup saves measurable physical memory;
3. a malicious tenant runs flush+reload against the deduplicated pages
   to profile its neighbor's accesses;
4. under the baseline the neighbor's behavior is fully visible; under
   TimeCache the observer learns nothing — dedup stays safe.

Run:  python examples/deduplication_sharing.py
"""

from repro.common import scaled_experiment_config
from repro.cpu.isa import Exit, Flush, Load, SleepOp, Store
from repro.cpu.program import Program
from repro.os.kernel import Kernel

IMAGE_LINES = 64
IMAGE_BYTES = IMAGE_LINES * 64
BASE = 0x10000


def build_machine(enabled: bool):
    config = scaled_experiment_config(num_cores=1)
    if not enabled:
        config = config.baseline()
    kernel = Kernel(config)

    # Both tenants load "the same container image": identical content,
    # so the kernel's samepage merging backs them with one physical copy.
    img_a = kernel.phys.allocate_segment(
        "tenantA/app.img", IMAGE_BYTES, content_key="sha256:app-v1"
    )
    img_b = kernel.phys.allocate_segment(
        "tenantB/app.img", IMAGE_BYTES, content_key="sha256:app-v1"
    )
    observer = kernel.create_process("tenantA")
    neighbor = kernel.create_process("tenantB")
    observer.address_space.map_segment(img_a, BASE)
    neighbor.address_space.map_segment(img_b, BASE)
    return kernel, observer, neighbor


def run_scenario(enabled: bool):
    kernel, observer, neighbor = build_machine(enabled)
    threshold = (
        kernel.config.hierarchy.latency.l2_hit
        + kernel.config.hierarchy.latency.dram
    ) // 2
    secret_pages = (3, 17, 42)  # which image lines the neighbor uses
    seen = []

    def spy():
        for i in range(IMAGE_LINES):
            yield Flush(BASE + i * 64)
        yield SleepOp(150_000)
        for i in range(IMAGE_LINES):
            r = yield Load(BASE + i * 64)
            if r.latency < threshold:
                seen.append(i)
        yield Exit()

    def worker():
        for _ in range(6):
            for page in secret_pages:
                yield Store(BASE + page * 64)
        yield Exit()

    to = observer.spawn(Program("spy", spy), affinity=0)
    tw = neighbor.spawn(Program("worker", worker), affinity=0)
    kernel.submit(to)
    kernel.submit(tw)
    kernel.run()
    return kernel, secret_pages, seen


def main() -> None:
    print("=== deduplication + TimeCache ===\n")
    kernel, _, _ = build_machine(enabled=True)
    print(
        f"two tenants mapped a {IMAGE_BYTES // 1024}KB image each; "
        f"dedup hits: {kernel.phys.dedup_hits}; physical bytes allocated: "
        f"{kernel.phys.allocated_bytes}"
    )
    print("(one copy serves both tenants — the memory saving dedup promises)\n")

    _, secret, seen = run_scenario(enabled=False)
    print(f"baseline : neighbor's secret pages {set(secret)}")
    print(f"           observer recovered      {set(seen)}  <-- dedup leaked\n")

    _, secret, seen = run_scenario(enabled=True)
    print(f"TimeCache: neighbor's secret pages {set(secret)}")
    print(f"           observer recovered      {set(seen) or '{}'}")
    print(
        "\nWith TimeCache the observer's reloads all pay the first-access"
        " delay,\nso deduplicated sharing no longer reveals the neighbor's"
        " working set."
    )


if __name__ == "__main__":
    main()
